//! Online alerting: structured [`AlertEvent`]s in a bounded ring (the
//! alert analogue of the [`crate::Tracer`] event ring) plus the watchdog
//! monitors the replay and protocol harnesses thread through their
//! loops — a liveness detector, a fleet-strength deficit detector, and a
//! repair-budget-exhaustion detector.
//!
//! Everything here follows the crate's "disabled is free" rule: a
//! disabled [`AlertSink`] makes every watchdog `observe` call a single
//! `None` check, so un-monitored replays are untouched (the
//! `monitor_overhead` bench gate pins this).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::json;
use crate::trace::{field_value_to_json, FieldValue};

/// Version stamped into every serialized alert record; bump on any
/// breaking change to [`AlertEvent::to_json`].
pub const ALERT_SCHEMA_VERSION: u32 = 1;

/// How urgent a fired alert is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; no action expected.
    Info,
    /// Degradation that will become a problem if sustained (slow-window
    /// burn, fleet below target strength).
    Warning,
    /// Immediate action required (fast-window burn, quorum loss,
    /// liveness stall).
    Critical,
}

impl Severity {
    /// Lower-case label used in JSON and reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// One fired alert: which monitor, when (sim time), how bad, and the
/// audit-record sequence numbers ([`crate::audit::AuditRecord::seq`]) of
/// the decisions that preceded it — the cross-reference that lets a
/// post-mortem jump from "the budget burned" to "these bids caused it".
#[derive(Clone, Debug, PartialEq)]
pub struct AlertEvent {
    /// Monotonic sequence number within the sink (starts at 1).
    pub seq: u64,
    /// Sim-time timestamp in microseconds (replay minutes are
    /// `minute * 60e6`, matching the tracer's convention).
    pub at_micros: u64,
    /// Dotted monitor id, e.g. `slo.availability.fast_burn` or
    /// `watchdog.liveness`.
    pub monitor: String,
    /// Urgency.
    pub severity: Severity,
    /// Human-readable one-liner.
    pub message: String,
    /// Audit-log sequence numbers of the decisions leading up to this
    /// alert (most recent last); empty when no audit log was live.
    pub audit_refs: Vec<u64>,
    /// Structured context (burn rate, window, live count, …).
    pub fields: Vec<(String, FieldValue)>,
}

impl AlertEvent {
    /// The alert as one JSON object (a valid JSON-lines record),
    /// carrying an explicit `schema_version`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"schema_version\":{ALERT_SCHEMA_VERSION},\"seq\":{},\"at_micros\":{},\"monitor\":",
            self.seq, self.at_micros
        ));
        json::push_str_lit(&mut out, &self.monitor);
        out.push_str(&format!(",\"severity\":\"{}\",\"message\":", self.severity.label()));
        json::push_str_lit(&mut out, &self.message);
        out.push_str(",\"audit_refs\":[");
        for (i, r) in self.audit_refs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&r.to_string());
        }
        out.push(']');
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (key, value)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::push_str_lit(&mut out, key);
                out.push(':');
                field_value_to_json(&mut out, value);
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

struct AlertRing {
    events: VecDeque<AlertEvent>,
    next_seq: u64,
    dropped: u64,
}

struct AlertInner {
    ring: Mutex<AlertRing>,
    capacity: usize,
}

/// Bounded ring of fired [`AlertEvent`]s. Cloning shares the ring;
/// [`AlertSink::disabled`] records nothing.
#[derive(Clone, Default)]
pub struct AlertSink {
    inner: Option<Arc<AlertInner>>,
}

impl AlertSink {
    /// Default ring capacity (alerts are rare; this never drops in
    /// practice, but the bound keeps pathological monitors harmless).
    pub const DEFAULT_CAPACITY: usize = 4_096;

    /// An enabled sink keeping at most `capacity` alerts.
    pub fn new(capacity: usize) -> AlertSink {
        AlertSink {
            inner: Some(Arc::new(AlertInner {
                ring: Mutex::new(AlertRing {
                    events: VecDeque::new(),
                    next_seq: 1,
                    dropped: 0,
                }),
                capacity: capacity.max(1),
            })),
        }
    }

    /// A sink that records nothing.
    pub fn disabled() -> AlertSink {
        AlertSink { inner: None }
    }

    /// Whether alerts are recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Fire an alert; returns its sequence number, or `None` when
    /// disabled.
    pub fn emit(
        &self,
        at_micros: u64,
        monitor: &str,
        severity: Severity,
        message: String,
        audit_refs: Vec<u64>,
        fields: Vec<(String, FieldValue)>,
    ) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let mut ring = inner.ring.lock().unwrap();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() >= inner.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(AlertEvent {
            seq,
            at_micros,
            monitor: monitor.to_owned(),
            severity,
            message,
            audit_refs,
            fields,
        });
        Some(seq)
    }

    /// Copy of the buffered alerts, oldest first.
    pub fn snapshot(&self) -> Vec<AlertEvent> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.ring.lock().unwrap().events.iter().cloned().collect()
        })
    }

    /// Alerts evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.ring.lock().unwrap().dropped)
    }

    /// Number of buffered alerts.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.ring.lock().unwrap().events.len())
    }

    /// Whether no alert has been buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for AlertSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => {
                let ring = inner.ring.lock().unwrap();
                f.debug_struct("AlertSink")
                    .field("alerts", &ring.events.len())
                    .field("dropped", &ring.dropped)
                    .finish()
            }
            None => f.write_str("AlertSink(disabled)"),
        }
    }
}

/// Detects stalls: outstanding client requests but no completion
/// progress within a sim-time bound. The harness calls
/// [`LivenessWatchdog::observe`] from its drain loop; progress is any
/// change in the outstanding count (completions shrink it, fresh
/// submissions reset the stall timer too — the service is clearly
/// accepting work).
#[derive(Debug)]
pub struct LivenessWatchdog {
    sink: AlertSink,
    stall_bound_micros: u64,
    last_outstanding: u64,
    last_progress_micros: u64,
    fired: bool,
}

impl LivenessWatchdog {
    /// A watchdog firing `watchdog.liveness` after `stall_bound_micros`
    /// of zero progress with work outstanding.
    pub fn new(sink: AlertSink, stall_bound_micros: u64) -> LivenessWatchdog {
        LivenessWatchdog {
            sink,
            stall_bound_micros: stall_bound_micros.max(1),
            last_outstanding: 0,
            last_progress_micros: 0,
            fired: false,
        }
    }

    /// Feed one observation; returns the alert seq if the stall bound
    /// was just crossed (edge-triggered — one alert per stall).
    pub fn observe(&mut self, now_micros: u64, outstanding: u64) -> Option<u64> {
        if !self.sink.is_enabled() {
            return None;
        }
        if outstanding == 0 || outstanding != self.last_outstanding {
            self.last_outstanding = outstanding;
            self.last_progress_micros = now_micros;
            self.fired = false;
            return None;
        }
        let stalled = now_micros.saturating_sub(self.last_progress_micros);
        if stalled >= self.stall_bound_micros && !self.fired {
            self.fired = true;
            return self.sink.emit(
                now_micros,
                "watchdog.liveness",
                Severity::Critical,
                format!(
                    "{outstanding} request(s) outstanding with no progress for \
                     {stalled} sim-µs (bound {})",
                    self.stall_bound_micros
                ),
                Vec::new(),
                vec![
                    ("outstanding".to_owned(), FieldValue::U64(outstanding)),
                    ("stalled_micros".to_owned(), FieldValue::U64(stalled)),
                ],
            );
        }
        None
    }
}

/// Detects fleet-strength deficits in the replay's minute accounting:
/// fires `watchdog.fleet_deficit` (warning) when the live count first
/// drops below the decided group size and `watchdog.quorum_loss`
/// (critical) when it drops below quorum; both clear (re-arm) when
/// strength is restored.
#[derive(Debug)]
pub struct FleetDeficitWatchdog {
    sink: AlertSink,
    in_deficit: bool,
    below_quorum: bool,
}

impl FleetDeficitWatchdog {
    /// A fresh watchdog over `sink`.
    pub fn new(sink: AlertSink) -> FleetDeficitWatchdog {
        FleetDeficitWatchdog {
            sink,
            in_deficit: false,
            below_quorum: false,
        }
    }

    /// Feed one strength observation; `audit_refs` names the decisions
    /// in effect (attached to any alert fired here).
    pub fn observe(
        &mut self,
        at_micros: u64,
        live: usize,
        group: usize,
        quorum: usize,
        audit_refs: &[u64],
    ) {
        if !self.sink.is_enabled() {
            return;
        }
        if live < quorum {
            if !self.below_quorum {
                self.below_quorum = true;
                self.sink.emit(
                    at_micros,
                    "watchdog.quorum_loss",
                    Severity::Critical,
                    format!("{live} live instance(s), quorum needs {quorum}"),
                    audit_refs.to_vec(),
                    vec![
                        ("live".to_owned(), FieldValue::U64(live as u64)),
                        ("quorum".to_owned(), FieldValue::U64(quorum as u64)),
                    ],
                );
            }
        } else {
            self.below_quorum = false;
        }
        if live < group {
            if !self.in_deficit {
                self.in_deficit = true;
                self.sink.emit(
                    at_micros,
                    "watchdog.fleet_deficit",
                    Severity::Warning,
                    format!("fleet at {live}/{group} decided strength"),
                    audit_refs.to_vec(),
                    vec![
                        ("live".to_owned(), FieldValue::U64(live as u64)),
                        ("group".to_owned(), FieldValue::U64(group as u64)),
                    ],
                );
            }
        } else {
            self.in_deficit = false;
        }
    }
}

/// Detects repair-budget exhaustion: the repair controller ran out of
/// rebids while kills were still arriving. One `watchdog.repair_budget`
/// alert per bidding interval (re-armed at each boundary).
#[derive(Debug)]
pub struct RepairBudgetWatchdog {
    sink: AlertSink,
    fired_this_interval: bool,
}

impl RepairBudgetWatchdog {
    /// A fresh watchdog over `sink`.
    pub fn new(sink: AlertSink) -> RepairBudgetWatchdog {
        RepairBudgetWatchdog {
            sink,
            fired_this_interval: false,
        }
    }

    /// Re-arm at a bidding-interval boundary.
    pub fn interval_start(&mut self) {
        self.fired_this_interval = false;
    }

    /// Report an exhausted rebid budget; fires at most once per
    /// interval.
    pub fn exhausted(&mut self, at_micros: u64, max_rebids: u32, audit_refs: &[u64]) {
        if !self.sink.is_enabled() || self.fired_this_interval {
            return;
        }
        self.fired_this_interval = true;
        self.sink.emit(
            at_micros,
            "watchdog.repair_budget",
            Severity::Critical,
            format!("rebid budget exhausted ({max_rebids} per interval)"),
            audit_refs.to_vec(),
            vec![("max_rebids".to_owned(), FieldValue::U64(max_rebids as u64))],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_and_sequences() {
        let sink = AlertSink::new(2);
        for i in 0..4u64 {
            sink.emit(i, "m", Severity::Info, format!("a{i}"), vec![], vec![]);
        }
        let alerts = sink.snapshot();
        assert_eq!(alerts.len(), 2);
        assert_eq!(sink.dropped(), 2);
        // Seqs keep counting across evictions.
        assert_eq!(alerts[0].seq, 3);
        assert_eq!(alerts[1].seq, 4);
    }

    #[test]
    fn disabled_sink_is_inert() {
        let sink = AlertSink::disabled();
        assert_eq!(
            sink.emit(0, "m", Severity::Critical, "x".into(), vec![], vec![]),
            None
        );
        assert!(sink.snapshot().is_empty());
        assert!(sink.is_empty());
    }

    #[test]
    fn liveness_fires_once_per_stall_and_rearms_on_progress() {
        let sink = AlertSink::new(16);
        let mut dog = LivenessWatchdog::new(sink.clone(), 1_000);
        assert_eq!(dog.observe(0, 3), None); // first sighting = progress
        assert_eq!(dog.observe(500, 3), None); // within bound
        let fired = dog.observe(1_200, 3);
        assert!(fired.is_some(), "stall past the bound fires");
        assert_eq!(dog.observe(2_000, 3), None, "still stalled: no re-fire");
        assert_eq!(dog.observe(2_100, 2), None, "progress re-arms");
        assert!(dog.observe(3_500, 2).is_some(), "second stall fires again");
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn fleet_deficit_edges_only() {
        let sink = AlertSink::new(16);
        let mut dog = FleetDeficitWatchdog::new(sink.clone());
        dog.observe(0, 5, 5, 3, &[]);
        assert!(sink.is_empty());
        dog.observe(60, 4, 5, 3, &[7]); // deficit, quorum holds
        dog.observe(120, 4, 5, 3, &[7]); // no duplicate
        dog.observe(180, 2, 5, 3, &[7]); // quorum lost
        let alerts = sink.snapshot();
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[0].monitor, "watchdog.fleet_deficit");
        assert_eq!(alerts[0].severity, Severity::Warning);
        assert_eq!(alerts[0].audit_refs, vec![7]);
        assert_eq!(alerts[1].monitor, "watchdog.quorum_loss");
        assert_eq!(alerts[1].severity, Severity::Critical);
        dog.observe(240, 5, 5, 3, &[]); // restored
        dog.observe(300, 4, 5, 3, &[]); // fresh deficit fires again
        assert_eq!(sink.len(), 3);
    }

    #[test]
    fn repair_budget_fires_once_per_interval() {
        let sink = AlertSink::new(16);
        let mut dog = RepairBudgetWatchdog::new(sink.clone());
        dog.exhausted(0, 4, &[1, 2]);
        dog.exhausted(60, 4, &[1, 2]);
        assert_eq!(sink.len(), 1);
        dog.interval_start();
        dog.exhausted(120, 4, &[3]);
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn alert_json_carries_schema_version() {
        let sink = AlertSink::new(4);
        sink.emit(
            60_000_000,
            "slo.availability.fast_burn",
            Severity::Critical,
            "burn".into(),
            vec![1, 2],
            vec![("burn_rate".to_owned(), FieldValue::F64(20.0))],
        );
        let json = sink.snapshot()[0].to_json();
        assert!(json.starts_with("{\"schema_version\":1,"));
        assert!(json.contains("\"audit_refs\":[1,2]"));
        assert!(json.contains("\"severity\":\"critical\""));
    }
}
