//! Timestamped events and the deterministic event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use obs::TraceContext;

use crate::sim::{NodeId, TimerToken};
use crate::time::SimTime;

/// What a popped event instructs the simulation to do.
#[derive(Debug)]
pub enum EventKind<M> {
    /// Deliver `msg` from `from` to the event's target node. `trace` is
    /// the causal context the sender attached (or propagated); it rides
    /// the envelope so receivers can parent their spans under the
    /// sender's without the message type knowing about tracing.
    Deliver {
        from: NodeId,
        msg: M,
        trace: TraceContext,
    },
    /// Fire the timer identified by `token` on the event's target node.
    /// `epoch` guards against timers surviving a crash/restart cycle: a
    /// timer only fires if the node's incarnation epoch still matches.
    Timer { token: TimerToken, epoch: u64 },
}

/// A scheduled event: a timestamp, a target node and a payload.
#[derive(Debug)]
pub struct Event<M> {
    /// Virtual time at which the event occurs.
    pub at: SimTime,
    /// Monotone insertion sequence; ties on `at` are broken by `seq` so the
    /// execution order is a pure function of the schedule.
    pub seq: u64,
    /// Node the event targets.
    pub target: NodeId,
    /// Payload.
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    // Reversed so that the std max-heap pops the *earliest* event first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of events (min-heap on `(at, seq)`).
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule an event; insertion order breaks timestamp ties.
    pub fn push(&mut self, at: SimTime, target: NodeId, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            at,
            seq,
            target,
            kind,
        });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(q: &mut EventQueue<u32>, at_ms: u64, target: usize, msg: u32) {
        q.push(
            SimTime::from_millis(at_ms),
            NodeId(target),
            EventKind::Deliver {
                from: NodeId(0),
                msg,
                trace: TraceContext::NONE,
            },
        );
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        deliver(&mut q, 30, 1, 3);
        deliver(&mut q, 10, 1, 1);
        deliver(&mut q, 20, 1, 2);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.at.as_millis())).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for msg in 0..5u32 {
            deliver(&mut q, 100, 1, msg);
        }
        let msgs: Vec<u32> = std::iter::from_fn(|| {
            q.pop().map(|e| match e.kind {
                EventKind::Deliver { msg, .. } => msg,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(msgs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        deliver(&mut q, 42, 0, 0);
        deliver(&mut q, 7, 0, 0);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(42)));
    }
}
