//! GF(2⁸) arithmetic with the 0x11D reduction polynomial
//! (x⁸ + x⁴ + x³ + x² + 1), the field conventionally used by storage
//! Reed–Solomon implementations.
//!
//! Multiplication and inversion go through compile-time log/exp tables:
//! the field's multiplicative group is cyclic of order 255 with generator
//! 2, so `a·b = exp[(log a + log b) mod 255]`.

/// The reduction polynomial, as the low 9 bits of 0x11D.
const POLY: u16 = 0x11D;

/// exp[i] = 2^i (tabulated over 0..512 to skip the mod-255 reduction).
const EXP: [u8; 512] = build_exp();
/// log[a] = discrete log base 2 of a (log[0] is unused).
const LOG: [u8; 256] = build_log();

const fn build_exp() -> [u8; 512] {
    let mut table = [0u8; 512];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        table[i] = x as u8;
        table[i + 255] = x as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    // Positions 510, 511 are never indexed (log sums < 510) but must be
    // initialized: keep them consistent with the cycle.
    table[510] = table[0];
    table[511] = table[1];
    table
}

const fn build_log() -> [u8; 256] {
    let exp = build_exp();
    let mut table = [0u8; 256];
    let mut i = 0;
    while i < 255 {
        table[exp[i] as usize] = i as u8;
        i += 1;
    }
    table
}

/// An element of GF(2⁸).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct Gf(pub u8);

// Field operations are deliberately inherent methods rather than the std
// `Add`/`Mul`/`Div` operator traits: the hot encode/decode loops call them
// through explicit names, and operator syntax on a `u8` newtype invites
// accidental integer arithmetic.
#[allow(clippy::should_implement_trait)]
impl Gf {
    /// The additive identity.
    pub const ZERO: Gf = Gf(0);
    /// The multiplicative identity.
    pub const ONE: Gf = Gf(1);
    /// The generator of the multiplicative group.
    pub const GENERATOR: Gf = Gf(2);

    /// Field addition (== subtraction == XOR).
    #[inline]
    pub fn add(self, rhs: Gf) -> Gf {
        Gf(self.0 ^ rhs.0)
    }

    /// Field multiplication via log/exp tables.
    #[inline]
    pub fn mul(self, rhs: Gf) -> Gf {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf::ZERO;
        }
        Gf(EXP[LOG[self.0 as usize] as usize + LOG[rhs.0 as usize] as usize])
    }

    /// Multiplicative inverse; panics on zero.
    #[inline]
    pub fn inv(self) -> Gf {
        assert!(self.0 != 0, "inverse of zero in GF(256)");
        Gf(EXP[255 - LOG[self.0 as usize] as usize])
    }

    /// Field division; panics when `rhs` is zero.
    #[inline]
    pub fn div(self, rhs: Gf) -> Gf {
        self.mul(rhs.inv())
    }

    /// `self` raised to the `k`-th power.
    pub fn pow(self, mut k: u32) -> Gf {
        if self.0 == 0 {
            return if k == 0 { Gf::ONE } else { Gf::ZERO };
        }
        k %= 255;
        Gf(EXP[(LOG[self.0 as usize] as u32 * k % 255) as usize])
    }
}

/// Multiply-accumulate a byte slice: `dst[i] ^= c · src[i]`. The hot loop
/// of the encoder — kept free of per-byte branching by hoisting the
/// log-table lookup of `c`.
pub fn mul_acc_slice(dst: &mut [u8], src: &[u8], c: Gf) {
    assert_eq!(dst.len(), src.len(), "shard length mismatch");
    if c.0 == 0 {
        return;
    }
    if c.0 == 1 {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
        return;
    }
    let log_c = LOG[c.0 as usize] as usize;
    for (d, &s) in dst.iter_mut().zip(src) {
        if s != 0 {
            *d ^= EXP[log_c + LOG[s as usize] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_xor_and_self_inverse() {
        let a = Gf(0x57);
        let b = Gf(0x83);
        assert_eq!(a.add(b), Gf(0x57 ^ 0x83));
        assert_eq!(a.add(a), Gf::ZERO);
        assert_eq!(a.add(Gf::ZERO), a);
    }

    #[test]
    fn known_multiplication_vectors() {
        // 2 · 2 = 4; generator powers follow the table construction.
        assert_eq!(Gf(2).mul(Gf(2)), Gf(4));
        assert_eq!(Gf(0x80).mul(Gf(2)), Gf((0x100u16 ^ POLY) as u8));
        assert_eq!(Gf(7).mul(Gf::ONE), Gf(7));
        assert_eq!(Gf(255).mul(Gf::ZERO), Gf::ZERO);
    }

    #[test]
    fn multiplication_matches_schoolbook() {
        // Carry-less multiply then reduce — the definitional product.
        fn slow_mul(a: u8, b: u8) -> u8 {
            let mut acc: u16 = 0;
            let mut a = a as u16;
            let mut b = b as u16;
            while b != 0 {
                if b & 1 != 0 {
                    acc ^= a;
                }
                a <<= 1;
                if a & 0x100 != 0 {
                    a ^= POLY;
                }
                b >>= 1;
            }
            acc as u8
        }
        for a in 0..=255u8 {
            for b in (0..=255u8).step_by(7) {
                assert_eq!(Gf(a).mul(Gf(b)).0, slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u8 {
            let inv = Gf(a).inv();
            assert_eq!(Gf(a).mul(inv), Gf::ONE, "a={a}");
        }
    }

    #[test]
    fn division_inverts_multiplication() {
        for a in 1..=255u8 {
            for b in (1..=255u8).step_by(11) {
                let prod = Gf(a).mul(Gf(b));
                assert_eq!(prod.div(Gf(b)), Gf(a));
            }
        }
    }

    #[test]
    fn generator_has_order_255() {
        let mut x = Gf::ONE;
        for i in 1..255 {
            x = x.mul(Gf::GENERATOR);
            assert_ne!(x, Gf::ONE, "generator order divides {i}");
        }
        assert_eq!(x.mul(Gf::GENERATOR), Gf::ONE);
    }

    #[test]
    fn pow_semantics() {
        assert_eq!(Gf(3).pow(0), Gf::ONE);
        assert_eq!(Gf(3).pow(1), Gf(3));
        assert_eq!(Gf(3).pow(2), Gf(3).mul(Gf(3)));
        assert_eq!(Gf(3).pow(255), Gf::ONE);
        assert_eq!(Gf::ZERO.pow(0), Gf::ONE);
        assert_eq!(Gf::ZERO.pow(5), Gf::ZERO);
    }

    #[test]
    fn distributivity_spot_checks() {
        for a in (0..=255u8).step_by(13) {
            for b in (0..=255u8).step_by(17) {
                for c in (0..=255u8).step_by(29) {
                    let left = Gf(a).mul(Gf(b).add(Gf(c)));
                    let right = Gf(a).mul(Gf(b)).add(Gf(a).mul(Gf(c)));
                    assert_eq!(left, right);
                }
            }
        }
    }

    #[test]
    fn mul_acc_slice_matches_elementwise() {
        let src: Vec<u8> = (0..=255).collect();
        for c in [Gf(0), Gf(1), Gf(2), Gf(0x1D), Gf(255)] {
            let mut dst = vec![0xA5u8; 256];
            let mut expect = dst.clone();
            mul_acc_slice(&mut dst, &src, c);
            for (e, &s) in expect.iter_mut().zip(&src) {
                *e ^= c.mul(Gf(s)).0;
            }
            assert_eq!(dst, expect, "c={:?}", c);
        }
    }
}
