//! Service deployment specifications.

use quorum::{solve::node_failure_pr, QuorumRule};
use spot_market::InstanceType;
use spot_model::ON_DEMAND_FP;

/// What kind of distributed service is being bid for.
#[derive(Clone, Debug)]
pub struct ServiceSpec {
    /// Human-readable name (reports only).
    pub name: String,
    /// The instance type every replica runs on.
    pub instance_type: InstanceType,
    /// Node count of the on-demand baseline deployment (the paper uses 5).
    pub baseline_nodes: usize,
    /// The quorum rule of the replication protocol.
    pub quorum: QuorumRule,
    /// Failure probability of one on-demand instance (`FP⁰`).
    pub fp0: f64,
    /// Acceptable availability slack ε (constraint 10); the paper suggests
    /// 1e-6.
    pub epsilon: f64,
}

impl ServiceSpec {
    /// The paper's distributed lock service: 5 × `m1.small`, majority
    /// quorums (tolerates 2 failures).
    pub fn lock_service() -> Self {
        ServiceSpec {
            name: "lock-service".into(),
            instance_type: InstanceType::M1Small,
            baseline_nodes: 5,
            quorum: QuorumRule::Majority,
            fp0: ON_DEMAND_FP,
            epsilon: 1e-6,
        }
    }

    /// The paper's erasure-coded storage service: 5 × `m3.large`,
    /// RS-Paxos θ(3,5) quorums (tolerates 1 failure).
    pub fn storage_service() -> Self {
        ServiceSpec {
            name: "storage-service".into(),
            instance_type: InstanceType::M3Large,
            baseline_nodes: 5,
            quorum: QuorumRule::RsPaxos { m: 3 },
            fp0: ON_DEMAND_FP,
            epsilon: 1e-6,
        }
    }

    /// The availability of the on-demand baseline — the right-hand side of
    /// constraint (10). For the lock service this is the paper's
    /// 0.9999901494.
    pub fn baseline_availability(&self) -> f64 {
        let k = self.quorum.quorum_size(self.baseline_nodes);
        quorum::threshold_availability(&vec![self.fp0; self.baseline_nodes], k)
    }

    /// The availability a spot deployment must reach (baseline − ε).
    pub fn availability_target(&self) -> f64 {
        self.baseline_availability() - self.epsilon
    }

    /// The per-node failure-probability target for an `n`-node spot
    /// deployment (Fig. 3, line 4), or `None` if `n` cannot reach the
    /// target under this quorum rule.
    pub fn node_fp_target(&self, n: usize) -> Option<f64> {
        if n < self.quorum.min_nodes() {
            return None;
        }
        let k = self.quorum.quorum_size(n);
        if k > n {
            return None;
        }
        node_failure_pr(n, k, self.availability_target()).filter(|p| *p > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_service_baseline_matches_paper() {
        let spec = ServiceSpec::lock_service();
        let a = spec.baseline_availability();
        assert!((a - 0.9999901494).abs() < 1e-9, "got {a}");
    }

    #[test]
    fn storage_service_is_less_available_than_lock() {
        // θ(3,5) tolerates one failure: availability below the lock
        // service's at the same per-node FP.
        let lock = ServiceSpec::lock_service().baseline_availability();
        let store = ServiceSpec::storage_service().baseline_availability();
        assert!(store < lock);
        assert!(store > 0.999, "still highly available: {store}");
    }

    #[test]
    fn node_fp_targets() {
        let spec = ServiceSpec::lock_service();
        // With 5 nodes, the per-node FP target sits just above 0.01 (the
        // ε slack loosens the baseline's 0.01 slightly).
        let p5 = spec.node_fp_target(5).unwrap();
        assert!((0.01..0.012).contains(&p5), "got {p5}");
        // More nodes, looser target.
        let p7 = spec.node_fp_target(7).unwrap();
        assert!(p7 > p5);
        // Fewer nodes, tighter.
        let p3 = spec.node_fp_target(3).unwrap();
        assert!(p3 < p5);
    }

    #[test]
    fn storage_spec_minimum_nodes() {
        let spec = ServiceSpec::storage_service();
        assert_eq!(spec.node_fp_target(2), None, "below m=3");
        assert!(spec.node_fp_target(3).is_some());
    }
}
