//! The simulation core: nodes, actors, contexts and the event loop.

use std::fmt;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::event::{EventKind, EventQueue};
use crate::network::{Deliveries, LinkChaos, Network, NetworkConfig};
use crate::time::SimTime;

/// Identifier of a simulated node (dense index into the simulation).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An actor-chosen timer identifier, echoed back when the timer fires.
///
/// Actors that need to "cancel" a timer use generation counters inside the
/// token and ignore stale fires; the simulator itself only cancels timers on
/// crash (via incarnation epochs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(pub u64);

/// The behaviour of a node. All nodes in one [`Simulation`] share a single
/// actor type, which suits homogeneous replicated services.
pub trait Actor: Sized {
    /// The message type exchanged between nodes.
    type Msg;

    /// Called when the node starts (initial boot, restart, or join).
    fn on_start(&mut self, _ctx: &mut Context<Self::Msg>) {}

    /// Called when a message is delivered to this node.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Context<Self::Msg>);

    /// Called when a timer previously set through [`Context::set_timer`]
    /// fires. Timers set before a crash never fire after a restart.
    fn on_timer(&mut self, _token: TimerToken, _ctx: &mut Context<Self::Msg>) {}
}

enum Effect<M> {
    Send { to: NodeId, msg: M },
    Timer { delay: SimTime, token: TimerToken },
}

/// Handed to actor callbacks; records outgoing effects and exposes the
/// node's identity and the current virtual time.
pub struct Context<M> {
    /// Current virtual time.
    pub now: SimTime,
    /// The node this context belongs to.
    pub me: NodeId,
    effects: Vec<Effect<M>>,
}

impl<M> Context<M> {
    fn new(now: SimTime, me: NodeId) -> Self {
        Context {
            now,
            me,
            effects: Vec::new(),
        }
    }

    /// Send `msg` to `to`; delivery (or loss) is decided by the network.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Schedule `on_timer(token)` after `delay` (crash-cancelled).
    pub fn set_timer(&mut self, delay: SimTime, token: TimerToken) {
        self.effects.push(Effect::Timer { delay, token });
    }
}

impl<M: Clone> Context<M> {
    /// Send `msg` to every node in `peers` except self.
    pub fn broadcast<'a, I>(&mut self, peers: I, msg: M)
    where
        I: IntoIterator<Item = &'a NodeId>,
    {
        let me = self.me;
        for &p in peers {
            if p != me {
                self.send(p, msg.clone());
            }
        }
    }
}

struct Slot<A> {
    actor: Option<A>,
    up: bool,
    /// The actor as it was at crash time — the node's "disk image". Quorum
    /// protocols are only safe across restarts if durable state survives,
    /// so a crashed actor is retained here for [`Simulation::take_crashed`]
    /// rather than discarded.
    wreck: Option<A>,
    /// Incarnation epoch; bumped on crash so in-flight timers and messages
    /// addressed to the previous incarnation are discarded.
    epoch: u64,
    /// Clock skew: added to the virtual time this node's actor observes
    /// via [`Context::now`]. Event scheduling itself is unskewed.
    skew: SimTime,
}

/// A deterministic discrete-event simulation of a set of nodes running the
/// same [`Actor`] over a lossy network.
pub struct Simulation<A: Actor> {
    nodes: Vec<Slot<A>>,
    queue: EventQueue<A::Msg>,
    network: Network,
    rng: ChaCha8Rng,
    now: SimTime,
    delivered: u64,
    dropped: u64,
    fingerprint: u64,
}

impl<A: Actor> Simulation<A>
where
    A::Msg: Clone,
{
    /// Create an empty simulation with the given network model and RNG seed.
    pub fn new(config: NetworkConfig, seed: u64) -> Self {
        Simulation {
            nodes: Vec::new(),
            queue: EventQueue::new(),
            network: Network::new(config),
            rng: ChaCha8Rng::seed_from_u64(seed),
            now: SimTime::ZERO,
            delivered: 0,
            dropped: 0,
            fingerprint: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total messages delivered so far.
    pub fn messages_delivered(&self) -> u64 {
        self.delivered
    }

    /// Total messages dropped (loss or partition or dead target) so far.
    pub fn messages_dropped(&self) -> u64 {
        self.dropped
    }

    /// Rolling digest of every event this run has processed: event time,
    /// target, kind, and drop/stale disposition all feed it. Two runs with
    /// the same seed, schedule and workload produce the same fingerprint,
    /// so chaos tests assert byte-identical reproduction with one `u64`
    /// comparison instead of diffing whole traces.
    pub fn fingerprint(&self) -> u64 {
        // Fold in the counters so runs that diverge only in pre-delivery
        // drops still differ.
        let fp = mix(self.fingerprint, self.delivered);
        mix(fp, self.dropped)
    }

    /// Add a new node running `actor`; it boots immediately (`on_start`).
    pub fn add_node(&mut self, actor: A) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Slot {
            actor: Some(actor),
            up: true,
            wreck: None,
            epoch: 0,
            skew: SimTime::ZERO,
        });
        self.boot(id);
        id
    }

    /// Number of node slots ever created (crashed ones included).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether `id` is currently up.
    pub fn is_up(&self, id: NodeId) -> bool {
        self.nodes.get(id.0).map(|s| s.up).unwrap_or(false)
    }

    /// Immutable access to a node's actor state (None while crashed).
    pub fn actor(&self, id: NodeId) -> Option<&A> {
        self.nodes.get(id.0).and_then(|s| s.actor.as_ref())
    }

    /// Mutable access to a node's actor state (None while crashed).
    ///
    /// Intended for drivers that inspect or tweak state between `run_until`
    /// calls; effects cannot be emitted from here.
    pub fn actor_mut(&mut self, id: NodeId) -> Option<&mut A> {
        self.nodes.get_mut(id.0).and_then(|s| s.actor.as_mut())
    }

    /// Crash a node: its state is destroyed, pending timers are cancelled
    /// and in-flight messages to it will be dropped on arrival.
    pub fn crash(&mut self, id: NodeId) {
        if let Some(slot) = self.nodes.get_mut(id.0) {
            slot.up = false;
            slot.wreck = slot.actor.take();
            slot.epoch += 1;
        }
    }

    /// Take the retained actor of a crashed node — its state at crash
    /// time, the "disk" a rebooting node recovers from. Returns `None` if
    /// the node is up or the wreck was already consumed. The caller is
    /// expected to clear actor-specific volatile state before handing the
    /// actor back to [`Simulation::restart`].
    pub fn take_crashed(&mut self, id: NodeId) -> Option<A> {
        self.nodes.get_mut(id.0).and_then(|s| s.wreck.take())
    }

    /// Restart a crashed node with a fresh actor (recovered state is the
    /// actor's own business: rebuilt from its replicated log peers, or
    /// carried over via [`Simulation::take_crashed`]). Any unconsumed
    /// wreck is discarded — the disk was replaced along with the actor.
    pub fn restart(&mut self, id: NodeId, actor: A) {
        let slot = &mut self.nodes[id.0];
        assert!(!slot.up, "restart of a live node {id}");
        slot.actor = Some(actor);
        slot.wreck = None;
        slot.up = true;
        self.boot(id);
    }

    /// Install a network partition (each group an island); see
    /// [`NetworkConfig`] for the connectivity rules.
    pub fn partition(&mut self, groups: Vec<Vec<NodeId>>) {
        self.network.partition(groups);
    }

    /// Heal any partition.
    pub fn heal(&mut self) {
        self.network.heal();
    }

    /// Enable link-level chaos (extra drops, duplicates, delay spikes) for
    /// subsequent sends. Chaos-off runs consume the identical RNG stream
    /// they always did, so this is free to leave uninstalled.
    pub fn set_link_chaos(&mut self, chaos: LinkChaos) {
        self.network.set_chaos(chaos);
    }

    /// Disable link-level chaos.
    pub fn clear_link_chaos(&mut self) {
        self.network.clear_chaos();
    }

    /// Skew a node's actor-visible clock forward by `ms` (cumulative).
    /// Only [`Context::now`] is affected; event scheduling stays on the
    /// global virtual clock, so skew perturbs lease/timeout *decisions*
    /// without breaking the discrete-event core.
    pub fn skew_clock(&mut self, id: NodeId, ms: u64) {
        if let Some(slot) = self.nodes.get_mut(id.0) {
            slot.skew += SimTime::from_millis(ms);
        }
    }

    /// A node's current clock skew.
    pub fn clock_skew(&self, id: NodeId) -> SimTime {
        self.nodes.get(id.0).map(|s| s.skew).unwrap_or(SimTime::ZERO)
    }

    /// Inject a message "from outside" (e.g. a client library): it is
    /// delivered to `to` as if sent by `from` after one network delay.
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: A::Msg) {
        let Deliveries { first, second } = self.network.sample_deliveries(from, to, &mut self.rng);
        let Some(delay) = first else {
            self.dropped += 1;
            return;
        };
        if let Some(dup) = second {
            self.queue.push(
                self.now + dup,
                to,
                EventKind::Deliver {
                    from,
                    msg: msg.clone(),
                },
            );
        }
        self.queue
            .push(self.now + delay, to, EventKind::Deliver { from, msg });
    }

    fn boot(&mut self, id: NodeId) {
        let now = self.now;
        let slot = &mut self.nodes[id.0];
        let mut ctx = Context::new(now + slot.skew, id);
        slot.actor
            .as_mut()
            .expect("boot of crashed node")
            .on_start(&mut ctx);
        let epoch = slot.epoch;
        self.flush(id, epoch, ctx);
    }

    fn flush(&mut self, from: NodeId, epoch: u64, ctx: Context<A::Msg>) {
        for effect in ctx.effects {
            match effect {
                Effect::Send { to, msg } => {
                    if to.0 >= self.nodes.len() {
                        self.dropped += 1;
                        continue;
                    }
                    let Deliveries { first, second } =
                        self.network.sample_deliveries(from, to, &mut self.rng);
                    let Some(delay) = first else {
                        self.dropped += 1;
                        continue;
                    };
                    if let Some(dup) = second {
                        self.queue.push(
                            self.now + dup,
                            to,
                            EventKind::Deliver {
                                from,
                                msg: msg.clone(),
                            },
                        );
                    }
                    self.queue
                        .push(self.now + delay, to, EventKind::Deliver { from, msg });
                }
                Effect::Timer { delay, token } => {
                    self.queue
                        .push(self.now + delay, from, EventKind::Timer { token, epoch });
                }
            }
        }
    }

    /// Process a single event if one is pending before `bound`; returns
    /// whether an event was processed. Time advances to the event time.
    pub fn step_before(&mut self, bound: SimTime) -> bool {
        let Some(at) = self.queue.peek_time() else {
            return false;
        };
        if at > bound {
            return false;
        }
        let ev = self.queue.pop().expect("peeked event vanished");
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        let id = ev.target;
        // Digest the event before dispatching: time, target, kind, and the
        // disposition (delivered / dead target / stale timer) all land in
        // the fingerprint, so any divergence between two runs shows up.
        let fp = mix(self.fingerprint, ev.at.as_millis());
        let fp = mix(fp, id.0 as u64);
        self.fingerprint = match &ev.kind {
            EventKind::Deliver { from, .. } => mix(fp, 1 ^ ((from.0 as u64) << 8)),
            EventKind::Timer { token, epoch } => mix(fp, 2 ^ (token.0 << 8) ^ (epoch << 40)),
        };
        let slot = &mut self.nodes[id.0];
        if !slot.up {
            self.dropped += 1;
            self.fingerprint = mix(self.fingerprint, 3);
            return true;
        }
        let epoch = slot.epoch;
        let mut ctx = Context::new(self.now + slot.skew, id);
        match ev.kind {
            EventKind::Deliver { from, msg } => {
                self.delivered += 1;
                slot.actor
                    .as_mut()
                    .expect("up node without actor")
                    .on_message(from, msg, &mut ctx);
            }
            EventKind::Timer {
                token,
                epoch: timer_epoch,
            } => {
                if timer_epoch != epoch {
                    self.fingerprint = mix(self.fingerprint, 4);
                    return true; // timer from a previous incarnation
                }
                slot.actor
                    .as_mut()
                    .expect("up node without actor")
                    .on_timer(token, &mut ctx);
            }
        }
        self.flush(id, epoch, ctx);
        true
    }

    /// Run the event loop until virtual time `bound` (inclusive): every
    /// event scheduled at or before `bound` is processed, then the clock is
    /// advanced to `bound`.
    pub fn run_until(&mut self, bound: SimTime) {
        while self.step_before(bound) {}
        if bound > self.now && bound != SimTime::MAX {
            self.now = bound;
        }
    }

    /// Run until the event queue drains completely (use with care: actors
    /// with recurring heartbeat timers never drain).
    pub fn run_to_quiescence(&mut self) {
        while self.step_before(SimTime::MAX) {}
    }
}

/// SplitMix64-style avalanche step for the run fingerprint.
fn mix(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ping-pong actor: replies to every `n` with `n+1` until 10.
    struct PingPong {
        peer: Option<NodeId>,
        seen: Vec<u32>,
    }

    impl Actor for PingPong {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Context<u32>) {
            if let Some(peer) = self.peer {
                ctx.send(peer, 0);
            }
        }

        fn on_message(&mut self, from: NodeId, msg: u32, ctx: &mut Context<u32>) {
            self.seen.push(msg);
            if msg < 10 {
                ctx.send(from, msg + 1);
            }
        }
    }

    fn pair() -> (Simulation<PingPong>, NodeId, NodeId) {
        let mut sim = Simulation::new(NetworkConfig::ideal(), 42);
        let a = sim.add_node(PingPong {
            peer: None,
            seen: vec![],
        });
        let b = sim.add_node(PingPong {
            peer: Some(a),
            seen: vec![],
        });
        (sim, a, b)
    }

    #[test]
    fn ping_pong_runs_to_completion() {
        let (mut sim, a, b) = pair();
        sim.run_to_quiescence();
        assert_eq!(sim.actor(a).unwrap().seen, vec![0, 2, 4, 6, 8, 10]);
        assert_eq!(sim.actor(b).unwrap().seen, vec![1, 3, 5, 7, 9]);
        assert_eq!(sim.messages_delivered(), 11);
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let (mut s1, _, _) = pair();
        let (mut s2, _, _) = pair();
        s1.run_to_quiescence();
        s2.run_to_quiescence();
        assert_eq!(s1.now(), s2.now());
        assert_eq!(s1.messages_delivered(), s2.messages_delivered());
    }

    #[test]
    fn crash_drops_messages_and_cancels_timers() {
        struct Beater {
            beats: u32,
        }
        impl Actor for Beater {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<()>) {
                ctx.set_timer(SimTime::from_millis(10), TimerToken(1));
            }
            fn on_timer(&mut self, _t: TimerToken, ctx: &mut Context<()>) {
                self.beats += 1;
                ctx.set_timer(SimTime::from_millis(10), TimerToken(1));
            }
            fn on_message(&mut self, _f: NodeId, _m: (), _c: &mut Context<()>) {}
        }
        let mut sim = Simulation::new(NetworkConfig::ideal(), 1);
        let n = sim.add_node(Beater { beats: 0 });
        sim.run_until(SimTime::from_millis(55));
        assert_eq!(sim.actor(n).unwrap().beats, 5);
        sim.crash(n);
        sim.run_until(SimTime::from_millis(200));
        assert!(sim.actor(n).is_none());
        // Restart: beats start over, stale timers never fire.
        sim.restart(n, Beater { beats: 0 });
        sim.run_until(SimTime::from_millis(231));
        assert_eq!(sim.actor(n).unwrap().beats, 3);
    }

    #[test]
    fn crash_retains_state_for_recovery() {
        let (mut sim, _a, b) = pair();
        sim.run_to_quiescence();
        sim.crash(b);
        // The crashed actor's state at crash time is recoverable — the
        // node's disk image — and survives exactly one take.
        let wreck = sim.take_crashed(b).expect("wreck retained");
        assert_eq!(wreck.seen, vec![1, 3, 5, 7, 9]);
        assert!(sim.take_crashed(b).is_none(), "wreck is consumed");
        sim.restart(b, wreck);
        assert_eq!(sim.actor(b).unwrap().seen, vec![1, 3, 5, 7, 9]);

        // A restart with a fresh actor discards any unconsumed wreck.
        sim.crash(b);
        sim.restart(
            b,
            PingPong {
                peer: None,
                seen: vec![],
            },
        );
        assert!(sim.take_crashed(b).is_none());
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut sim: Simulation<PingPong> = Simulation::new(NetworkConfig::ideal(), 0);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn inject_reaches_target() {
        let (mut sim, a, _) = pair();
        sim.run_to_quiescence();
        let before = sim.actor(a).unwrap().seen.len();
        sim.inject(NodeId(1), a, 99);
        sim.run_to_quiescence();
        assert_eq!(sim.actor(a).unwrap().seen.len(), before + 1);
    }

    #[test]
    fn partitioned_nodes_cannot_talk() {
        let (mut sim, a, b) = pair();
        sim.run_to_quiescence();
        let seen_before = sim.actor(a).unwrap().seen.len();
        sim.partition(vec![vec![a], vec![b]]);
        sim.inject(b, a, 99);
        sim.run_to_quiescence();
        // The injected message is dropped by the partition.
        assert_eq!(sim.actor(a).unwrap().seen.len(), seen_before);
        assert_eq!(sim.messages_dropped(), 1);
        // Healing restores connectivity.
        sim.heal();
        sim.inject(b, a, 99);
        sim.run_to_quiescence();
        assert_eq!(sim.actor(a).unwrap().seen.len(), seen_before + 1);
    }

    #[test]
    fn fingerprints_match_for_identical_runs_and_differ_otherwise() {
        let (mut s1, _, _) = pair();
        let (mut s2, _, _) = pair();
        s1.run_to_quiescence();
        s2.run_to_quiescence();
        assert_eq!(s1.fingerprint(), s2.fingerprint());
        // Perturb one run: extra injected message changes the digest.
        let (mut s3, a, b) = pair();
        s3.run_to_quiescence();
        s3.inject(b, a, 99);
        s3.run_to_quiescence();
        assert_ne!(s1.fingerprint(), s3.fingerprint());
    }

    #[test]
    fn link_chaos_duplicates_messages() {
        let mut sim = Simulation::new(NetworkConfig::ideal(), 8);
        let a = sim.add_node(PingPong {
            peer: None,
            seen: vec![],
        });
        sim.set_link_chaos(LinkChaos {
            dup_pr: 1.0,
            extra_delay_max: SimTime::from_millis(50),
            ..LinkChaos::default()
        });
        sim.inject(NodeId(0), a, 42);
        // inject() is attributed to `a` itself here (loopback) — use a
        // distinct phantom sender so chaos applies.
        let b = sim.add_node(PingPong {
            peer: None,
            seen: vec![],
        });
        sim.inject(b, a, 77);
        sim.run_to_quiescence();
        let seen = &sim.actor(a).unwrap().seen;
        // 42 loopback-injected once; 77 delivered twice (duplicate).
        assert_eq!(seen.iter().filter(|&&m| m == 77).count(), 2);
        sim.clear_link_chaos();
        sim.inject(b, a, 5);
        sim.run_to_quiescence();
        assert_eq!(
            sim.actor(a).unwrap().seen.iter().filter(|&&m| m == 5).count(),
            1
        );
    }

    #[test]
    fn clock_skew_shifts_actor_visible_time_only() {
        struct Clock {
            seen_now: Vec<SimTime>,
        }
        impl Actor for Clock {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<()>) {
                ctx.set_timer(SimTime::from_millis(10), TimerToken(0));
            }
            fn on_timer(&mut self, _t: TimerToken, ctx: &mut Context<()>) {
                self.seen_now.push(ctx.now);
            }
            fn on_message(&mut self, _f: NodeId, _m: (), _c: &mut Context<()>) {}
        }
        let mut sim = Simulation::new(NetworkConfig::ideal(), 0);
        let n = sim.add_node(Clock { seen_now: vec![] });
        sim.skew_clock(n, 500);
        assert_eq!(sim.clock_skew(n), SimTime::from_millis(500));
        sim.run_until(SimTime::from_millis(20));
        // Timer fired at global t=10ms but the actor saw t=510ms.
        assert_eq!(sim.actor(n).unwrap().seen_now, vec![SimTime::from_millis(510)]);
        assert_eq!(sim.now(), SimTime::from_millis(20));
        // Skew accumulates.
        sim.skew_clock(n, 100);
        assert_eq!(sim.clock_skew(n), SimTime::from_millis(600));
    }
}
