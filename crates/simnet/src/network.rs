//! Network behaviour: latency model, message loss and partitions.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::sim::NodeId;
use crate::time::SimTime;

/// Configuration of the simulated network connecting the nodes.
///
/// The services in this workspace are geo-replicated across EC2 availability
/// zones, so the defaults model cross-zone WAN links: tens of milliseconds of
/// one-way latency with jitter and a small loss rate. Loopback delivery
/// (node to itself) is near-instant.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Minimum one-way latency between distinct nodes, inclusive.
    pub min_latency: SimTime,
    /// Maximum one-way latency between distinct nodes, inclusive.
    pub max_latency: SimTime,
    /// Probability that a message between distinct nodes is silently lost.
    pub drop_probability: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            min_latency: SimTime::from_millis(20),
            max_latency: SimTime::from_millis(80),
            drop_probability: 0.001,
        }
    }
}

impl NetworkConfig {
    /// A perfect network: zero loss, fixed 1 ms latency. Useful in tests
    /// that want to isolate protocol logic from network nondeterminism.
    pub fn ideal() -> Self {
        NetworkConfig {
            min_latency: SimTime::from_millis(1),
            max_latency: SimTime::from_millis(1),
            drop_probability: 0.0,
        }
    }

    /// A lossy, high-jitter network for stress tests.
    pub fn harsh() -> Self {
        NetworkConfig {
            min_latency: SimTime::from_millis(10),
            max_latency: SimTime::from_millis(400),
            drop_probability: 0.05,
        }
    }
}

/// Mutable network state: the active partition and the RNG-driven sampling
/// of latencies and drops.
#[derive(Debug)]
pub(crate) struct Network {
    pub config: NetworkConfig,
    /// Partition groups: nodes may only talk to nodes in the same group.
    /// Empty means fully connected.
    groups: Vec<Vec<NodeId>>,
}

impl Network {
    pub fn new(config: NetworkConfig) -> Self {
        Network {
            config,
            groups: Vec::new(),
        }
    }

    /// Install a partition: each inner vector is one side. Nodes not listed
    /// in any group are isolated from everyone.
    pub fn partition(&mut self, groups: Vec<Vec<NodeId>>) {
        self.groups = groups;
    }

    /// Remove any partition, restoring full connectivity.
    pub fn heal(&mut self) {
        self.groups.clear();
    }

    /// Whether a message from `a` may currently reach `b`.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        if a == b || self.groups.is_empty() {
            return true;
        }
        self.groups.iter().any(|g| g.contains(&a) && g.contains(&b))
    }

    /// Sample the delivery delay for a message from `a` to `b`, or `None`
    /// if the message is dropped (loss or partition).
    pub fn sample_delivery(&self, a: NodeId, b: NodeId, rng: &mut ChaCha8Rng) -> Option<SimTime> {
        if !self.connected(a, b) {
            return None;
        }
        if a == b {
            return Some(SimTime::from_millis(1));
        }
        if self.config.drop_probability > 0.0 && rng.gen::<f64>() < self.config.drop_probability {
            return None;
        }
        let lo = self.config.min_latency.as_millis();
        let hi = self.config.max_latency.as_millis().max(lo);
        let ms = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
        Some(SimTime::from_millis(ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ideal_network_never_drops() {
        let net = Network::new(NetworkConfig::ideal());
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let d = net.sample_delivery(NodeId(0), NodeId(1), &mut rng);
            assert_eq!(d, Some(SimTime::from_millis(1)));
        }
    }

    #[test]
    fn latency_within_bounds() {
        let net = Network::new(NetworkConfig {
            min_latency: SimTime::from_millis(5),
            max_latency: SimTime::from_millis(9),
            drop_probability: 0.0,
        });
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..500 {
            let d = net
                .sample_delivery(NodeId(0), NodeId(1), &mut rng)
                .unwrap()
                .as_millis();
            assert!((5..=9).contains(&d), "latency {d} out of bounds");
        }
    }

    #[test]
    fn partition_blocks_cross_group_traffic() {
        let mut net = Network::new(NetworkConfig::ideal());
        net.partition(vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2)]]);
        assert!(net.connected(NodeId(0), NodeId(1)));
        assert!(!net.connected(NodeId(0), NodeId(2)));
        // Unlisted nodes are isolated.
        assert!(!net.connected(NodeId(3), NodeId(0)));
        // Loopback always works.
        assert!(net.connected(NodeId(3), NodeId(3)));
        net.heal();
        assert!(net.connected(NodeId(0), NodeId(2)));
    }

    #[test]
    fn drop_probability_observed() {
        let net = Network::new(NetworkConfig {
            min_latency: SimTime::from_millis(1),
            max_latency: SimTime::from_millis(1),
            drop_probability: 0.5,
        });
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let delivered = (0..10_000)
            .filter(|_| {
                net.sample_delivery(NodeId(0), NodeId(1), &mut rng)
                    .is_some()
            })
            .count();
        assert!((4_000..6_000).contains(&delivered), "delivered={delivered}");
    }
}
