//! Service deployment specifications.

use quorum::{solve::node_failure_pr, QuorumRule};
use spot_market::InstanceType;
use spot_model::ON_DEMAND_FP;

/// What kind of distributed service is being bid for.
#[derive(Clone, Debug)]
pub struct ServiceSpec {
    /// Human-readable name (reports only).
    pub name: String,
    /// The instance type every replica runs on.
    pub instance_type: InstanceType,
    /// Node count of the on-demand baseline deployment (the paper uses 5).
    pub baseline_nodes: usize,
    /// The quorum rule of the replication protocol.
    pub quorum: QuorumRule,
    /// Failure probability of one on-demand instance (`FP⁰`).
    pub fp0: f64,
    /// Acceptable availability slack ε (constraint 10); the paper suggests
    /// 1e-6.
    pub epsilon: f64,
    /// The instance-type pools replicas may be placed in. Empty (the
    /// default) means the single-type deployment `[instance_type]` — the
    /// paper's setup, preserved byte-identically by every optimizer path.
    /// With ≥2 types the optimizer chooses a *type mix* per zone.
    pub pool_types: Vec<InstanceType>,
    /// Minimum capacity-weighted fleet strength (Σ
    /// [`InstanceType::capacity_weight`] over chosen replicas) a decision
    /// must reach. `0` disables the constraint; the auto-scaler re-targets
    /// this each interval from observed load.
    pub min_strength: u32,
    /// Prefer spreading replicas across *zones* when selecting pools.
    /// Off (the default) keeps every legacy selection byte-identical;
    /// the replay framework turns it on under `BidEra::CapacityReclaim`,
    /// where same-zone pools share capacity crunches and cross-zone
    /// pools have independent interruption processes.
    pub diversify: bool,
}

impl ServiceSpec {
    /// The paper's distributed lock service: 5 × `m1.small`, majority
    /// quorums (tolerates 2 failures).
    pub fn lock_service() -> Self {
        ServiceSpec {
            name: "lock-service".into(),
            instance_type: InstanceType::M1Small,
            baseline_nodes: 5,
            quorum: QuorumRule::Majority,
            fp0: ON_DEMAND_FP,
            epsilon: 1e-6,
            pool_types: Vec::new(),
            min_strength: 0,
            diversify: false,
        }
    }

    /// The paper's erasure-coded storage service: 5 × `m3.large`,
    /// RS-Paxos θ(3,5) quorums (tolerates 1 failure).
    pub fn storage_service() -> Self {
        ServiceSpec {
            name: "storage-service".into(),
            instance_type: InstanceType::M3Large,
            baseline_nodes: 5,
            quorum: QuorumRule::RsPaxos { m: 3 },
            fp0: ON_DEMAND_FP,
            epsilon: 1e-6,
            pool_types: Vec::new(),
            min_strength: 0,
            diversify: false,
        }
    }

    /// Open `types` as placement pools (builder style). The first listed
    /// type becomes the nominal `instance_type` for single-type fallbacks.
    pub fn with_pools(mut self, types: &[InstanceType]) -> Self {
        assert!(!types.is_empty(), "need at least one pool type");
        self.instance_type = types[0];
        self.pool_types = types.to_vec();
        self
    }

    /// Require a capacity-weighted fleet strength of at least `strength`
    /// (builder style).
    pub fn with_min_strength(mut self, strength: u32) -> Self {
        self.min_strength = strength;
        self
    }

    /// Toggle zone-diversified pool selection (builder style); see
    /// [`ServiceSpec::diversify`].
    pub fn with_diversify(mut self, diversify: bool) -> Self {
        self.diversify = diversify;
        self
    }

    /// The effective pool list: `pool_types`, or `[instance_type]` when no
    /// pools were opened.
    pub fn pools(&self) -> Vec<InstanceType> {
        if self.pool_types.is_empty() {
            vec![self.instance_type]
        } else {
            self.pool_types.clone()
        }
    }

    /// Whether this spec exercises the heterogeneous decision paths (≥2
    /// pool types or a strength floor). Single-type, unconstrained specs
    /// take the legacy byte-identical paths everywhere.
    pub fn is_hetero(&self) -> bool {
        self.pool_types.len() > 1 || self.min_strength > 0
    }

    /// The availability of the on-demand baseline — the right-hand side of
    /// constraint (10). For the lock service this is the paper's
    /// 0.9999901494.
    pub fn baseline_availability(&self) -> f64 {
        let k = self.quorum.quorum_size(self.baseline_nodes);
        quorum::threshold_availability(&vec![self.fp0; self.baseline_nodes], k)
    }

    /// The availability a spot deployment must reach (baseline − ε).
    pub fn availability_target(&self) -> f64 {
        self.baseline_availability() - self.epsilon
    }

    /// The per-node failure-probability target for an `n`-node spot
    /// deployment (Fig. 3, line 4), or `None` if `n` cannot reach the
    /// target under this quorum rule.
    pub fn node_fp_target(&self, n: usize) -> Option<f64> {
        if n < self.quorum.min_nodes() {
            return None;
        }
        let k = self.quorum.quorum_size(n);
        if k > n {
            return None;
        }
        node_failure_pr(n, k, self.availability_target()).filter(|p| *p > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_service_baseline_matches_paper() {
        let spec = ServiceSpec::lock_service();
        let a = spec.baseline_availability();
        assert!((a - 0.9999901494).abs() < 1e-9, "got {a}");
    }

    #[test]
    fn storage_service_is_less_available_than_lock() {
        // θ(3,5) tolerates one failure: availability below the lock
        // service's at the same per-node FP.
        let lock = ServiceSpec::lock_service().baseline_availability();
        let store = ServiceSpec::storage_service().baseline_availability();
        assert!(store < lock);
        assert!(store > 0.999, "still highly available: {store}");
    }

    #[test]
    fn node_fp_targets() {
        let spec = ServiceSpec::lock_service();
        // With 5 nodes, the per-node FP target sits just above 0.01 (the
        // ε slack loosens the baseline's 0.01 slightly).
        let p5 = spec.node_fp_target(5).unwrap();
        assert!((0.01..0.012).contains(&p5), "got {p5}");
        // More nodes, looser target.
        let p7 = spec.node_fp_target(7).unwrap();
        assert!(p7 > p5);
        // Fewer nodes, tighter.
        let p3 = spec.node_fp_target(3).unwrap();
        assert!(p3 < p5);
    }

    #[test]
    fn storage_spec_minimum_nodes() {
        let spec = ServiceSpec::storage_service();
        assert_eq!(spec.node_fp_target(2), None, "below m=3");
        assert!(spec.node_fp_target(3).is_some());
    }
}
