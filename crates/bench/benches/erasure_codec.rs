//! Reed–Solomon throughput: the coding substrate of RS-Paxos.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use erasure::ReedSolomon;
use std::hint::black_box;

fn object(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 131 + 7) as u8).collect()
}

fn encode(c: &mut Criterion) {
    let rs = ReedSolomon::new(3, 5);
    let mut g = c.benchmark_group("rs_encode_theta_3_5");
    for size in [4 * 1024usize, 64 * 1024, 1024 * 1024] {
        let obj = object(size);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &obj, |b, o| {
            b.iter(|| rs.encode_object(black_box(o)))
        });
    }
    g.finish();
}

fn reconstruct(c: &mut Criterion) {
    let rs = ReedSolomon::new(3, 5);
    let mut g = c.benchmark_group("rs_reconstruct_two_lost");
    for size in [64 * 1024usize, 1024 * 1024] {
        let shards = rs.encode_object(&object(size));
        let partial: Vec<Option<Vec<u8>>> = shards
            .iter()
            .enumerate()
            .map(|(i, s)| (i != 0 && i != 2).then(|| s.to_vec()))
            .collect();
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &partial, |b, p| {
            b.iter(|| rs.decode_object(black_box(p)).expect("decodable"))
        });
    }
    g.finish();
}

fn wide_codes(c: &mut Criterion) {
    let mut g = c.benchmark_group("rs_encode_64k_by_code");
    let obj = object(64 * 1024);
    for (m, n) in [(3usize, 5usize), (6, 9), (10, 14)] {
        let rs = ReedSolomon::new(m, n);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("theta_{m}_{n}")),
            &obj,
            |b, o| b.iter(|| rs.encode_object(black_box(o))),
        );
    }
    g.finish();
}

criterion_group!(benches, encode, reconstruct, wide_codes);
criterion_main!(benches);
