//! Driver helpers for RS-Paxos clusters.

use simnet::{ChaosAction, NetworkConfig, NodeId, SimTime, Simulation};

use crate::client::RsClientState;
use crate::msg::{StoreCmd, StoreResp};
use crate::replica::{RsConfig, RsReplica};
use crate::RsNode;

/// An RS-Paxos storage cluster under simulation.
pub struct RsCluster {
    /// The underlying simulation (exposed for fault injection).
    pub sim: Simulation<RsNode>,
    servers: Vec<NodeId>,
    clients: Vec<NodeId>,
    cfg: RsConfig,
    seed: u64,
}

impl RsCluster {
    /// Build a θ(m, n) storage cluster of `n` replicas.
    pub fn new(n: usize, cfg: RsConfig, net: NetworkConfig, seed: u64) -> Self {
        assert!(n >= cfg.m, "need at least m replicas");
        let mut sim = Simulation::new(net, seed);
        // Network faults (drops, duplicates, delay spikes) emit
        // visibility events into the same trace ring the replicas use,
        // so orphaned request spans point at their cause.
        sim.set_tracer(cfg.obs.trace.clone());
        let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
        for &id in &ids {
            let r = RsReplica::new(id, ids.clone(), cfg.clone(), seed);
            let got = sim.add_node(RsNode::Server(r));
            assert_eq!(got, id);
        }
        RsCluster {
            sim,
            servers: ids,
            clients: Vec::new(),
            cfg,
            seed,
        }
    }

    /// The server ids.
    pub fn servers(&self) -> &[NodeId] {
        &self.servers
    }

    /// The client ids.
    pub fn clients(&self) -> &[NodeId] {
        &self.clients
    }

    /// Add a closed-loop client.
    pub fn add_client(&mut self) -> NodeId {
        let id = NodeId(self.sim.node_count());
        let c = RsClientState::new(id, self.servers.clone(), self.seed)
            .with_obs(self.cfg.obs.clone());
        let got = self.sim.add_node(RsNode::Client(c));
        assert_eq!(got, id);
        self.clients.push(id);
        id
    }

    /// Add an open-loop workload session playing `schedule` (sorted by
    /// arrival time); see [`crate::open_loop::RsOpenLoopClient`].
    pub fn add_open_loop(&mut self, schedule: Vec<(SimTime, StoreCmd)>) -> NodeId {
        let id = NodeId(self.sim.node_count());
        let session = crate::open_loop::RsOpenLoopClient::new(id, self.servers.clone(), schedule)
            .with_obs(self.cfg.obs.clone());
        let got = self.sim.add_node(RsNode::OpenLoop(session));
        assert_eq!(got, id);
        id
    }

    /// Queue a command on `client`.
    pub fn submit(&mut self, client: NodeId, cmd: StoreCmd) {
        self.sim
            .actor_mut(client)
            .and_then(RsNode::as_client_mut)
            .expect("client exists")
            .submit(cmd);
    }

    /// Run until `client` drains or `deadline`; true when drained. A
    /// liveness watchdog fires `watchdog.liveness` into the config's
    /// alert sink if commands sit outstanding with no progress for
    /// [`paxos::harness::LIVENESS_STALL_BOUND`] of sim time.
    pub fn run_until_drained(&mut self, client: NodeId, deadline: SimTime) -> bool {
        let mut watchdog = obs::LivenessWatchdog::new(
            self.cfg.obs.alerts.clone(),
            paxos::harness::LIVENESS_STALL_BOUND,
        );
        loop {
            let outstanding = self
                .sim
                .actor(client)
                .and_then(RsNode::as_client)
                .map(RsClientState::outstanding)
                .unwrap_or(0);
            watchdog.observe(
                self.sim.now().as_millis().saturating_mul(1_000),
                outstanding as u64,
            );
            if outstanding == 0 {
                return true;
            }
            if self.sim.now() >= deadline {
                return false;
            }
            let next = self.sim.now() + SimTime::from_millis(100);
            self.sim.run_until(next.min(deadline));
        }
    }

    /// The last completed response on `client`.
    pub fn last_response(&self, client: NodeId) -> Option<StoreResp> {
        self.sim
            .actor(client)
            .and_then(RsNode::as_client)
            .and_then(|c| c.history().last())
            .and_then(|h| h.completed.clone())
            .map(|(_, r)| r)
    }

    /// The current leader, if any.
    pub fn leader(&self) -> Option<NodeId> {
        self.servers.iter().copied().find(|&id| {
            self.sim
                .actor(id)
                .and_then(RsNode::as_server)
                .map(RsReplica::is_leader)
                .unwrap_or(false)
        })
    }

    /// Crash a replica.
    pub fn crash(&mut self, id: NodeId) {
        self.sim.crash(id);
    }

    /// Restart a crashed replica slot (a replacement instance taking over
    /// the same shard index; it recovers the log via catch-up).
    pub fn restart(&mut self, id: NodeId) {
        let r = RsReplica::new(
            id,
            self.servers.clone(),
            self.cfg.clone(),
            self.seed ^ id.0 as u64,
        );
        self.sim.restart(id, RsNode::Server(r));
    }

    /// Immutable replica access.
    pub fn replica(&self, id: NodeId) -> Option<&RsReplica> {
        self.sim.actor(id).and_then(RsNode::as_server)
    }

    /// Execute one fault-schedule action against this cluster — same
    /// contract as `paxos::harness::Cluster::apply_chaos`: a crash stops a
    /// replica dead, a restart reboots it with durable state (promises,
    /// slot log, shard store) intact and volatile leadership state lost,
    /// partitions only separate replicas (all other nodes are appended to
    /// every side), and inapplicable actions are no-ops.
    pub fn apply_chaos(&mut self, action: &ChaosAction) {
        match action {
            ChaosAction::Crash(id) => {
                if self.sim.is_up(*id) {
                    self.crash(*id);
                }
            }
            ChaosAction::Restart(id) => {
                if !self.sim.is_up(*id) {
                    match self.sim.take_crashed(*id) {
                        Some(RsNode::Server(mut r)) => {
                            r.reboot();
                            self.sim.restart(*id, RsNode::Server(r));
                        }
                        _ => self.restart(*id),
                    }
                }
            }
            ChaosAction::Partition(groups) => {
                let mut groups = groups.clone();
                let listed: Vec<NodeId> = groups.iter().flatten().copied().collect();
                for n in 0..self.sim.node_count() {
                    let id = NodeId(n);
                    if !listed.contains(&id) {
                        for g in &mut groups {
                            g.push(id);
                        }
                    }
                }
                self.sim.partition(groups);
            }
            ChaosAction::Heal => self.sim.heal(),
            ChaosAction::SetLinkChaos(chaos) => self.sim.set_link_chaos(chaos.clone()),
            ChaosAction::ClearLinkChaos => self.sim.clear_link_chaos(),
            ChaosAction::ClockSkew(id, ms) => self.sim.skew_clock(*id, *ms),
        }
    }
}
