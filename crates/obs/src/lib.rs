//! Workspace-wide observability: cheap atomic metrics and structured
//! event tracing, designed for the simulation-heavy crates in this tree.
//!
//! Two deliberate properties shape the design:
//!
//! * **Disabled is free.** Every handle ([`Registry`], [`Counter`],
//!   [`Tracer`], …) has a disabled form whose operations are a `None`
//!   check and nothing else, so instrumented hot paths (Paxos message
//!   handling, trace replay) cost nothing when observability is off —
//!   which is the default everywhere.
//! * **Time is pluggable.** Tracing timestamps come from a [`Clock`],
//!   so events can carry *simulated* time (via [`ManualClock`], driven
//!   from `simnet`/replay minutes) or wall time ([`WallClock`])
//!   interchangeably.
//!
//! The crate has zero dependencies; JSON export is hand-rolled.

pub mod audit;
pub mod causal;
mod clock;
pub mod export;
mod json;
mod metrics;
pub mod monitor;
pub mod slo;
mod timeseries;
mod trace;

pub use audit::{audit_jsonl, alerts_jsonl, AuditKind, AuditLog, AuditRecord, AUDIT_SCHEMA_VERSION};
pub use causal::{
    assemble_traces, chrome_trace_json, critical_path, hop_self_times, CausalInstant,
    CausalSpan, CausalTrace, PathSegment,
};
pub use clock::{Clock, ManualClock, WallClock};
pub use monitor::{
    AlertEvent, AlertSink, FleetDeficitWatchdog, LivenessWatchdog, RepairBudgetWatchdog,
    Severity, ALERT_SCHEMA_VERSION,
};
pub use slo::{SloSpec, SloTracker};
pub use metrics::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSummary,
    MetricsSnapshot, Registry, HISTOGRAM_BUCKETS,
};
pub use timeseries::{
    SeriesPoint, SeriesSnapshot, SeriesStore, TimeSeries, DEFAULT_SERIES_CAPACITY,
};
pub use trace::{
    event_to_json, Event, EventKind, FieldValue, Span, SpanHandle, TraceContext, Tracer,
};

use std::sync::Arc;

/// A bundled observability handle: a metrics [`Registry`] plus an event
/// [`Tracer`] sharing one clock. This is the single field instrumented
/// subsystems carry in their configs; cloning is cheap (two `Arc`s).
#[derive(Clone)]
pub struct Obs {
    /// Counters, gauges, and histograms.
    pub metrics: Registry,
    /// Structured events and spans.
    pub trace: Tracer,
    /// Named `(t, f64)` time series with bounded memory.
    pub series: SeriesStore,
    /// Fired monitor alerts (SLO burn, watchdogs).
    pub alerts: AlertSink,
    /// Decision audit log (bid selections, repair actions).
    pub audit: AuditLog,
}

impl Obs {
    /// Disabled metrics and tracing; all operations are no-ops.
    pub fn disabled() -> Obs {
        Obs {
            metrics: Registry::disabled(),
            trace: Tracer::disabled(),
            series: SeriesStore::disabled(),
            alerts: AlertSink::disabled(),
            audit: AuditLog::disabled(),
        }
    }

    /// Enabled, timestamping from the wall clock.
    pub fn wall() -> Obs {
        Obs::with_clock(Arc::new(WallClock::new()))
    }

    /// Enabled, timestamping from a caller-driven virtual clock.
    /// Returns the handle and the clock to advance.
    pub fn simulated() -> (Obs, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        (Obs::with_clock(clock.clone()), clock)
    }

    /// Enabled, timestamping trace events from `clock`.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Obs {
        Obs {
            metrics: Registry::new(),
            trace: Tracer::new(clock, Tracer::DEFAULT_CAPACITY),
            series: SeriesStore::new(),
            alerts: AlertSink::new(AlertSink::DEFAULT_CAPACITY),
            audit: AuditLog::new(AuditLog::DEFAULT_CAPACITY),
        }
    }

    /// Whether any instrumentation is live.
    pub fn is_enabled(&self) -> bool {
        self.metrics.is_enabled()
            || self.trace.is_enabled()
            || self.series.is_enabled()
            || self.alerts.is_enabled()
            || self.audit.is_enabled()
    }

    /// Drive the tracer's clock, when it is a [`ManualClock`] (no-op on
    /// wall clocks and disabled handles). Instrumented simulations call
    /// this as their virtual time advances.
    pub fn set_time_micros(&self, micros: u64) {
        self.trace.set_time_micros(micros);
    }

    /// Counter handle from the bundled registry.
    pub fn counter(&self, name: &str) -> Counter {
        self.metrics.counter(name)
    }

    /// Gauge handle from the bundled registry.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.metrics.gauge(name)
    }

    /// Histogram handle from the bundled registry.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.metrics.histogram(name)
    }

    /// Time-series handle from the bundled store.
    pub fn time_series(&self, name: &str) -> TimeSeries {
        self.series.series(name)
    }

    /// Record one time-series sample, timestamped from the tracer's
    /// clock (in the clock's own units — replay drives it in simulated
    /// minutes-as-micros, so the coordinate is `minute * 60e6`).
    pub fn record_series(&self, name: &str, value: f64) {
        self.series.record(name, self.trace.now_micros(), value);
    }

    /// The full state as one JSON document:
    /// `{"metrics": ..., "series": ..., "trace": ..., "alerts": [...],
    /// "audit": [...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"metrics\":");
        out.push_str(&self.metrics.snapshot().to_json());
        out.push_str(",\"series\":[");
        for (i, s) in self.series.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_json());
        }
        out.push_str("],\"trace\":");
        out.push_str(&self.trace.to_json());
        out.push_str(",\"alerts\":[");
        for (i, a) in self.alerts.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&a.to_json());
        }
        out.push_str("],\"audit\":[");
        for (i, r) in self.audit.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&r.to_json());
        }
        out.push_str("]}");
        out
    }
}

impl Default for Obs {
    fn default() -> Obs {
        Obs::disabled()
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("metrics", &self.metrics)
            .field("trace", &self.trace)
            .field("series", &self.series)
            .field("alerts", &self.alerts)
            .field("audit", &self.audit)
            .finish()
    }
}
