//! Offline shim for the subset of `serde` this workspace uses.
//!
//! Instead of upstream's generic `Serializer`/`Deserializer` machinery,
//! this shim round-trips through a single in-memory JSON [`Value`] — the
//! only data format the workspace touches (`serde_json`). The derive
//! macros re-exported here (see the sibling `serde_derive` shim) generate
//! `to_value`/`from_value` implementations for plain structs, newtype
//! structs, and unit-variant enums, which covers every derived type in
//! the tree. Swapping real serde back in requires no call-site changes.

// Vendored API-compat shim: exempt from workspace lint policy.
#![allow(clippy::all)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An in-memory JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(u) => Some(u as f64),
            Value::I64(i) => Some(i as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }

    /// This value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(u) => Some(u),
            Value::I64(i) if i >= 0 => Some(i as u64),
            Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// This value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::I64(i) => Some(i),
            Value::F64(f) if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) => {
                Some(f as i64)
            }
            _ => None,
        }
    }
}

/// A (de)serialization error: a plain message, matching what the
/// workspace does with errors (formats them into strings).
#[derive(Clone, Debug)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error carrying `message`.
    pub fn msg(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types convertible to a JSON [`Value`].
pub trait Serialize {
    /// The JSON form of `self`.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from JSON, with a descriptive error on shape mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Look up a required object field (support helper for derived impls).
pub fn obj_field<'a>(obj: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::msg(format!("missing field `{name}`")))
}

// ---- primitive impls ----------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(u).map_err(|_| Error::msg(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::U64(i as u64) } else { Value::I64(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(i).map_err(|_| Error::msg(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// ---- container impls ----------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = v
            .as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect::<Result<_, _>>()?;
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of length {N}")))
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Keys stringify through their JSON form, as serde_json does for
        // non-string keys it can represent.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (json_key(&k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (json_key(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

fn json_key(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::U64(u) => u.to_string(),
        Value::I64(i) => i.to_string(),
        Value::F64(f) => f.to_string(),
        Value::Bool(b) => b.to_string(),
        _ => String::from("<key>"),
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::msg("expected tuple array"))?;
                let expected = [$(stringify!($idx)),+].len();
                if items.len() != expected {
                    return Err(Error::msg(format!(
                        "expected {expected}-tuple, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-9i64).to_value()).unwrap(), -9);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&String::from("hi").to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let t = (1u8, -2i64, 0.5f64);
        assert_eq!(<(u8, i64, f64)>::from_value(&t.to_value()).unwrap(), t);
        let o: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn shape_mismatch_errors() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(Vec::<u64>::from_value(&Value::Bool(true)).is_err());
        assert!(<(u8, u8)>::from_value(&Value::Array(vec![Value::U64(1)])).is_err());
    }
}
