//! Exact money arithmetic in micro-dollars.
//!
//! Spot prices in 2014 were quoted with four decimal places (e.g. $0.0071),
//! so floating point is both unnecessary and hazardous for billing. All
//! prices and charges in this workspace are integers in units of 10⁻⁶ USD.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A non-negative amount of money in micro-dollars (10⁻⁶ USD).
///
/// Used both for hourly prices/bids and for accumulated charges.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Price(pub u64);

impl Price {
    /// Zero dollars.
    pub const ZERO: Price = Price(0);

    /// The minimum bid increment on the 2014 spot market: $0.0001.
    pub const TICK: Price = Price(100);

    /// Construct from micro-dollars.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        Price(micros)
    }

    /// Construct from a dollar amount, rounding to the nearest micro-dollar.
    ///
    /// Panics on negative or non-finite input (prices are never negative).
    pub fn from_dollars(d: f64) -> Self {
        assert!(d.is_finite() && d >= 0.0, "invalid dollar amount {d}");
        Price((d * 1e6).round() as u64)
    }

    /// The amount in micro-dollars.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The amount as floating-point dollars (for reporting only).
    #[inline]
    pub fn as_dollars(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Round up to the next multiple of [`Price::TICK`].
    pub fn round_up_to_tick(self) -> Price {
        let t = Price::TICK.0;
        Price(self.0.div_ceil(t) * t)
    }

    /// Round down to a multiple of [`Price::TICK`].
    pub fn round_down_to_tick(self) -> Price {
        let t = Price::TICK.0;
        Price(self.0 / t * t)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Price) -> Price {
        Price(self.0.saturating_sub(other.0))
    }

    /// Multiply by a non-negative scale factor, rounding to nearest.
    ///
    /// Used for "spot price plus p percent" heuristic bids.
    pub fn scale(self, factor: f64) -> Price {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor {factor}"
        );
        Price((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for Price {
    type Output = Price;
    #[inline]
    fn add(self, rhs: Price) -> Price {
        Price(self.0.checked_add(rhs.0).expect("price overflow"))
    }
}

impl AddAssign for Price {
    #[inline]
    fn add_assign(&mut self, rhs: Price) {
        *self = *self + rhs;
    }
}

impl Sub for Price {
    type Output = Price;
    #[inline]
    fn sub(self, rhs: Price) -> Price {
        Price(self.0.checked_sub(rhs.0).expect("price underflow"))
    }
}

impl Mul<u64> for Price {
    type Output = Price;
    #[inline]
    fn mul(self, rhs: u64) -> Price {
        Price(self.0.checked_mul(rhs).expect("price overflow"))
    }
}

impl Sum for Price {
    fn sum<I: Iterator<Item = Price>>(iter: I) -> Price {
        iter.fold(Price::ZERO, Add::add)
    }
}

impl fmt::Debug for Price {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self)
    }
}

impl fmt::Display for Price {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dollars = self.0 / 1_000_000;
        let micros = self.0 % 1_000_000;
        let s = if micros == 0 {
            format!("{dollars}.00")
        } else if micros.is_multiple_of(100) {
            // Four decimals when exact (typical spot quotes), else six.
            format!("{dollars}.{:04}", micros / 100)
        } else {
            format!("{dollars}.{micros:06}")
        };
        // Respect width/alignment flags from format strings.
        f.pad(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dollar_round_trip() {
        let p = Price::from_dollars(0.0071);
        assert_eq!(p.as_micros(), 7_100);
        assert!((p.as_dollars() - 0.0071).abs() < 1e-12);
    }

    #[test]
    fn tick_rounding() {
        assert_eq!(Price(7_150).round_up_to_tick(), Price(7_200));
        assert_eq!(Price(7_150).round_down_to_tick(), Price(7_100));
        assert_eq!(Price(7_100).round_up_to_tick(), Price(7_100));
        assert_eq!(Price::ZERO.round_up_to_tick(), Price::ZERO);
    }

    #[test]
    fn arithmetic_and_sum() {
        let a = Price::from_dollars(0.01);
        let b = Price::from_dollars(0.002);
        assert_eq!(a + b, Price::from_dollars(0.012));
        assert_eq!(a - b, Price::from_dollars(0.008));
        assert_eq!(a * 3, Price::from_dollars(0.03));
        let total: Price = [a, b, b].into_iter().sum();
        assert_eq!(total, Price::from_dollars(0.014));
    }

    #[test]
    fn scaling_matches_percentage_bids() {
        // Extra(m, 0.2) bids the spot price plus 20 %.
        let spot = Price::from_dollars(0.0080);
        assert_eq!(spot.scale(1.2), Price::from_dollars(0.0096));
        assert_eq!(spot.scale(0.0), Price::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Price::from_dollars(0.0071).to_string(), "0.0071");
        assert_eq!(Price::from_dollars(1.5).to_string(), "1.5000");
        assert_eq!(Price::from_dollars(2.0).to_string(), "2.00");
        assert_eq!(Price(1_234_567).to_string(), "1.234567");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = Price(1) - Price(2);
    }
}
