//! Availability-math benches: Eq. 1 evaluation strategies and the
//! inverse solver of Fig. 3 line 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quorum::{
    acceptance_availability, node_failure_pr, optimal_system, threshold_availability,
    MajorityQuorum, QuorumSystem,
};
use std::hint::black_box;

fn fps(n: usize) -> Vec<f64> {
    (0..n).map(|i| 0.01 + 0.005 * (i % 7) as f64).collect()
}

fn threshold_dp_vs_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("availability_eq1");
    for n in [5usize, 9, 13, 17] {
        let p = fps(n);
        let k = n / 2 + 1;
        g.bench_with_input(BenchmarkId::new("threshold_dp", n), &p, |b, p| {
            b.iter(|| threshold_availability(black_box(p), k))
        });
        if n <= 17 {
            g.bench_with_input(BenchmarkId::new("enumeration", n), &p, |b, p| {
                b.iter(|| {
                    acceptance_availability(p.len(), black_box(p), |m| m.count_ones() as usize >= k)
                })
            });
        }
    }
    g.finish();
}

fn weighted_voting(c: &mut Criterion) {
    let p = fps(9);
    c.bench_function("optimal_weighted_system_9", |b| {
        b.iter(|| {
            let sys = optimal_system(black_box(&p));
            sys.availability(&p)
        })
    });
}

fn inverse_solver(c: &mut Criterion) {
    let mut g = c.benchmark_group("node_failure_pr");
    for n in [5usize, 9, 17] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| node_failure_pr(n, n / 2 + 1, black_box(0.9999901494)))
        });
    }
    g.finish();
}

fn acceptance_set_construction(c: &mut Criterion) {
    c.bench_function("majority17_acceptance_set", |b| {
        b.iter(|| MajorityQuorum::new(17).acceptance_set())
    });
}

criterion_group!(
    benches,
    threshold_dp_vs_enumeration,
    weighted_voting,
    inverse_solver,
    acceptance_set_construction
);
criterion_main!(benches);
