//! Determinism under parallelism: the scenario engine runs sweep cells
//! rayon-parallel over a shared market and model store, and its output
//! must not depend on how those cells are scheduled. Replaying the quick
//! lock sweep pinned to one thread and with the default thread count must
//! produce identical rows.

use replay::experiments::{lock_sweep, Scale};

#[test]
fn lock_sweep_rows_are_thread_count_independent() {
    let scale = Scale::quick(2014);
    let rows = lock_sweep(&scale);
    // In-process both runs see the same rayon pool, so the cross-config
    // check runs the repro binary (below); here we assert the sweep is
    // reproducible at all within one process.
    let again = lock_sweep(&scale);
    assert_eq!(rows.len(), again.len());
    for (a, b) in rows.iter().zip(&again) {
        assert_eq!(a.interval_hours, b.interval_hours);
        assert_eq!(a.strategy, b.strategy);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.availability.to_bits(), b.availability.to_bits());
        assert_eq!(a.kills, b.kills);
    }
}

/// Run `repro --quick fig6` (the lock sweep) as a subprocess with
/// `RAYON_NUM_THREADS=1` and with the default thread count, and require
/// byte-identical data rows.
#[test]
fn repro_fig6_identical_across_thread_counts() {
    let bin = env!("CARGO_BIN_EXE_repro");
    let run = |threads: Option<&str>| -> String {
        let mut cmd = std::process::Command::new(bin);
        cmd.args(["--quick", "--seed", "2014", "fig6"]);
        match threads {
            Some(n) => {
                cmd.env("RAYON_NUM_THREADS", n);
            }
            None => {
                cmd.env_remove("RAYON_NUM_THREADS");
            }
        }
        let out = cmd.output().expect("repro runs");
        assert!(out.status.success(), "repro failed: {out:?}");
        // Keep data rows only: `#` lines carry wall-clock timings.
        String::from_utf8(out.stdout)
            .expect("utf8 output")
            .lines()
            .filter(|l| !l.starts_with('#'))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let single = run(Some("1"));
    let default = run(None);
    assert_eq!(single, default, "sweep rows depend on thread count");
}
