//! Atomic metric instruments and their registry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json;

/// Number of log₂ buckets a [`Histogram`] keeps: bucket 0 holds the
/// value 0, bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`, and the
/// last bucket additionally absorbs everything above it.
pub const HISTOGRAM_BUCKETS: usize = 65;

struct RegistryInner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCells>>>,
}

/// A named collection of [`Counter`]s, [`Gauge`]s, and [`Histogram`]s.
///
/// Cloning a `Registry` (or any instrument handle) is cheap and the
/// clone records into the same cells, so handles can be fanned out
/// across rayon/crossbeam workers freely. A registry created with
/// [`Registry::disabled`] hands out no-op instruments; that path is a
/// single pointer check per operation.
#[derive(Clone)]
pub struct Registry {
    inner: Option<Arc<RegistryInner>>,
}

impl Registry {
    /// An enabled, empty registry.
    pub fn new() -> Registry {
        Registry {
            inner: Some(Arc::new(RegistryInner {
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// A registry whose instruments all discard their updates.
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    /// Whether instruments from this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The counter named `name`, created on first use. Disabled
    /// registries return a no-op handle.
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            cell: self.inner.as_ref().map(|inner| {
                let mut map = inner.counters.lock().unwrap();
                map.entry(name.to_owned()).or_default().clone()
            }),
        }
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge {
            cell: self.inner.as_ref().map(|inner| {
                let mut map = inner.gauges.lock().unwrap();
                map.entry(name.to_owned())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits())))
                    .clone()
            }),
        }
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram {
            cells: self.inner.as_ref().map(|inner| {
                let mut map = inner.histograms.lock().unwrap();
                map.entry(name.to_owned()).or_default().clone()
            }),
        }
    }

    /// Fold every instrument of `other` into this registry: counters
    /// add, gauges take `other`'s value, histograms merge buckets and
    /// exact stats. Disabled registries on either side are a no-op, as
    /// is merging a registry into itself.
    pub fn merge(&self, other: &Registry) {
        self.merge_prefixed(other, "");
    }

    /// [`Registry::merge`], with every incoming instrument renamed to
    /// `{prefix}{name}` — how per-strategy or per-run registries are
    /// combined into one without colliding (e.g. prefix `"Jupiter."`).
    pub fn merge_prefixed(&self, other: &Registry, prefix: &str) {
        let (Some(dst), Some(src)) = (&self.inner, &other.inner) else {
            return;
        };
        // Clone the source cell handles first so no two registry locks
        // are ever held at once (self-merge would otherwise deadlock).
        let src_counters: Vec<(String, Arc<AtomicU64>)> = src
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(n, c)| (n.clone(), c.clone()))
            .collect();
        let src_gauges: Vec<(String, Arc<AtomicU64>)> = src
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(n, c)| (n.clone(), c.clone()))
            .collect();
        let src_histograms: Vec<(String, Arc<HistogramCells>)> = src
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(n, c)| (n.clone(), c.clone()))
            .collect();
        for (name, cell) in src_counters {
            let dst_counter = self.counter(&format!("{prefix}{name}"));
            let dst_cell = dst_counter.cell.as_ref().expect("enabled registry");
            if Arc::ptr_eq(dst_cell, &cell) {
                continue; // merging a cell into itself would double it
            }
            dst_cell.fetch_add(cell.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        for (name, cell) in src_gauges {
            let dst_gauge = self.gauge(&format!("{prefix}{name}"));
            let dst_cell = dst_gauge.cell.as_ref().expect("enabled registry");
            if Arc::ptr_eq(dst_cell, &cell) {
                continue;
            }
            dst_cell.store(cell.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        for (name, cells) in src_histograms {
            let dst_hist = {
                let mut map = dst.histograms.lock().unwrap();
                map.entry(format!("{prefix}{name}")).or_default().clone()
            };
            if Arc::ptr_eq(&dst_hist, &cells) {
                continue;
            }
            for (dst_bucket, src_bucket) in dst_hist.buckets.iter().zip(cells.buckets.iter()) {
                dst_bucket.fetch_add(src_bucket.load(Ordering::Relaxed), Ordering::Relaxed);
            }
            dst_hist
                .count
                .fetch_add(cells.count.load(Ordering::Relaxed), Ordering::Relaxed);
            dst_hist
                .sum
                .fetch_add(cells.sum.load(Ordering::Relaxed), Ordering::Relaxed);
            dst_hist
                .max
                .fetch_max(cells.max.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of every instrument's state, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        MetricsSnapshot {
            counters: inner
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(name, cell)| (name.clone(), f64::from_bits(cell.load(Ordering::Relaxed))))
                .collect(),
            histograms: inner
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(name, cells)| (name.clone(), cells.summarize()))
                .collect(),
        }
    }
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::disabled()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => f
                .debug_struct("Registry")
                .field("counters", &inner.counters.lock().unwrap().len())
                .field("gauges", &inner.gauges.lock().unwrap().len())
                .field("histograms", &inner.histograms.lock().unwrap().len())
                .finish(),
            None => f.write_str("Registry(disabled)"),
        }
    }
}

/// A monotonically increasing `u64`.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.cell {
            Some(_) => write!(f, "Counter({})", self.get()),
            None => f.write_str("Counter(disabled)"),
        }
    }
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A last-write-wins `f64` value (stored as bits in an atomic).
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.cell {
            Some(_) => write!(f, "Gauge({})", self.get()),
            None => f.write_str("Gauge(disabled)"),
        }
    }
}

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.cell {
            cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 when disabled).
    pub fn get(&self) -> f64 {
        self.cell
            .as_ref()
            .map_or(0.0, |cell| f64::from_bits(cell.load(Ordering::Relaxed)))
    }
}

/// Shared histogram state: log₂ buckets plus exact count/sum/max.
struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCells {
    fn default() -> HistogramCells {
        HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for `value`: 0 for 0, else `⌊log₂ value⌋ + 1`, capped
/// at the last bucket.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of the values bucket `index` covers (the
/// quantile resolution of the histogram).
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl HistogramCells {
    fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn summarize(&self) -> HistogramSummary {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let max = self.max.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Rank of the q-th value (1-based), then walk the CDF.
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    // Clamp to the observed max so the top bucket does
                    // not overstate by up to 2x.
                    return bucket_upper_bound(i).min(max);
                }
            }
            max
        };
        // Interpolated estimate: find the bucket holding the q-th rank,
        // then place the value linearly within the bucket's range by
        // how far into the bucket's population the rank falls. Tighter
        // than the power-of-two upper bound, still bucket-resolution.
        let quantile_est = |q: f64| -> f64 {
            if count == 0 {
                return 0.0;
            }
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if seen + n >= rank {
                    let lo = if i == 0 { 0 } else { bucket_upper_bound(i - 1) + 1 };
                    let hi = bucket_upper_bound(i).min(max);
                    let frac = (rank - seen) as f64 / n as f64;
                    return (lo as f64 + frac * (hi.saturating_sub(lo)) as f64).min(max as f64);
                }
                seen += n;
            }
            max as f64
        };
        let sum = self.sum.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            sum,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
            max,
            p50_est: quantile_est(0.50),
            p90_est: quantile_est(0.90),
            p99_est: quantile_est(0.99),
        }
    }
}

/// A log-bucketed distribution of `u64` samples (latencies in
/// microseconds, sizes, counts). Quantiles are upper bounds with
/// power-of-two resolution; `count`/`sum`/`max` are exact.
#[derive(Clone, Default)]
pub struct Histogram {
    cells: Option<Arc<HistogramCells>>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.cells {
            Some(cells) => {
                let s = cells.summarize();
                write!(f, "Histogram(count={}, max={})", s.count, s.max)
            }
            None => f.write_str("Histogram(disabled)"),
        }
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(cells) = &self.cells {
            cells.record(value);
        }
    }

    /// Time `f` with the wall clock and record elapsed microseconds.
    /// When disabled, just calls `f` — no clock reads.
    #[inline]
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        match &self.cells {
            Some(cells) => {
                let start = std::time::Instant::now();
                let out = f();
                cells.record(start.elapsed().as_micros() as u64);
                out
            }
            None => f(),
        }
    }

    /// Current statistics (all zero when disabled or empty).
    pub fn summary(&self) -> HistogramSummary {
        self.cells
            .as_ref()
            .map_or_else(HistogramSummary::default, |cells| cells.summarize())
    }
}

/// Point-in-time statistics of one [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow).
    pub sum: u64,
    /// Arithmetic mean of samples.
    pub mean: f64,
    /// Median upper bound (power-of-two resolution).
    pub p50: u64,
    /// 95th-percentile upper bound.
    pub p95: u64,
    /// 99th-percentile upper bound.
    pub p99: u64,
    /// Largest recorded sample (exact).
    pub max: u64,
    /// Median estimate with linear in-bucket interpolation.
    pub p50_est: f64,
    /// 90th-percentile interpolated estimate.
    pub p90_est: f64,
    /// 99th-percentile interpolated estimate.
    pub p99_est: f64,
}

/// A point-in-time copy of a whole [`Registry`], detached from the
/// atomics — safe to store in results and serialize later.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// The counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The histogram summary named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Sum of all counters whose name starts with `prefix` — handy for
    /// rolling up per-zone or per-message-type families.
    pub fn counter_family(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|&(_, v)| v)
            .sum()
    }

    /// This snapshot as one JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str_lit(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str_lit(&mut out, name);
            out.push(':');
            json::push_f64(&mut out, *v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str_lit(&mut out, name);
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"mean\":",
                h.count, h.sum
            ));
            json::push_f64(&mut out, h.mean);
            out.push_str(&format!(
                ",\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}",
                h.p50, h.p95, h.p99, h.max
            ));
            out.push_str(",\"p50_est\":");
            json::push_f64(&mut out, h.p50_est);
            out.push_str(",\"p90_est\":");
            json::push_f64(&mut out, h.p90_est);
            out.push_str(",\"p99_est\":");
            json::push_f64(&mut out, h.p99_est);
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}
