//! RS-Paxos wire messages.

use bytes::Bytes;
use paxos::Ballot;
use simnet::NodeId;

/// A log slot index.
pub type Slot = u64;

/// Client-visible store commands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreCmd {
    /// Write `object` under `key`.
    Put {
        /// Object key.
        key: String,
        /// Object bytes (shipped whole to the leader, coded from there).
        object: Bytes,
    },
    /// Read the object under `key`.
    Get {
        /// Object key.
        key: String,
    },
    /// Remove `key`.
    Delete {
        /// Object key.
        key: String,
    },
}

/// Client-visible responses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreResp {
    /// Put applied; the version is the log slot of the write.
    Stored {
        /// Version (log slot) assigned to the write.
        version: u64,
    },
    /// Get result.
    Value {
        /// The reconstructed object (`None` if the key is absent).
        object: Option<Bytes>,
    },
    /// Delete applied.
    Deleted,
    /// A read failed because too few shards survive (service degraded
    /// below the erasure threshold).
    Unavailable,
}

/// The value a slot carries, as the *leader* sees it (full object).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SlotValue {
    /// A write (full object at the leader; shards on the wire).
    Put {
        /// Originating client.
        client: NodeId,
        /// Client request id.
        req_id: u64,
        /// Object key.
        key: String,
        /// Full object bytes.
        object: Bytes,
    },
    /// A serialized read marker.
    Get {
        /// Originating client.
        client: NodeId,
        /// Client request id.
        req_id: u64,
        /// Object key.
        key: String,
    },
    /// A delete.
    Delete {
        /// Originating client.
        client: NodeId,
        /// Client request id.
        req_id: u64,
        /// Object key.
        key: String,
    },
    /// Several commands agreed on as one slot value, applied in order
    /// and atomically within the slot. Invariants: never empty, never
    /// nested, no `Noop` inside, at most one entry per client, and no
    /// two puts to the same key (a put's version is the slot, which all
    /// entries share).
    Batch(Vec<SlotValue>),
    /// Gap filler after leader recovery.
    Noop,
}

/// What travels in an `Accept` / sits in an acceptor's log: coded for
/// puts, verbatim for data-free commands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireValue {
    /// One shard of a `Put`.
    PutShard {
        /// Originating client.
        client: NodeId,
        /// Client request id.
        req_id: u64,
        /// Object key.
        key: String,
        /// This acceptor's shard index.
        shard_idx: u8,
        /// Shard bytes.
        shard: Bytes,
    },
    /// A read marker (no payload).
    Get {
        /// Originating client.
        client: NodeId,
        /// Client request id.
        req_id: u64,
        /// Object key.
        key: String,
    },
    /// A delete marker.
    Delete {
        /// Originating client.
        client: NodeId,
        /// Client request id.
        req_id: u64,
        /// Object key.
        key: String,
    },
    /// A batch: one wire sub-value per [`SlotValue::Batch`] entry, in
    /// the same order (each destination gets its own shard for puts).
    Batch(Vec<WireValue>),
    /// Gap filler.
    Noop,
}

/// An accepted entry reported in a promise.
#[derive(Clone, Debug)]
pub struct RsAccepted {
    /// Slot.
    pub slot: Slot,
    /// Ballot at which the shard was accepted.
    pub ballot: Ballot,
    /// The acceptor's wire value (its own shard for puts).
    pub value: WireValue,
}

/// A chosen entry for commit/catch-up, tailored per destination (each
/// replica receives its own shard when the sender can produce it).
#[derive(Clone, Debug)]
pub struct RsChosen {
    /// Slot.
    pub slot: Slot,
    /// The destination's wire value (`PutShard` with the *destination's*
    /// shard index, or a data-free marker).
    pub value: WireValue,
}

/// RS-Paxos protocol messages.
#[derive(Clone, Debug)]
pub enum RsMsg {
    /// Phase-1a.
    Prepare {
        /// Candidate ballot.
        ballot: Ballot,
        /// First slot the candidate is missing.
        from_slot: Slot,
    },
    /// Phase-1b.
    Promise {
        /// Promised ballot.
        ballot: Ballot,
        /// Accepted-but-unchosen shard entries.
        accepted: Vec<RsAccepted>,
        /// Chosen entries at or above `from_slot` (sender's shards).
        chosen: Vec<RsChosen>,
        /// The acceptor's first unchosen slot.
        commit_index: Slot,
    },
    /// Phase-2a: accept one slot's shard.
    Accept {
        /// Leader ballot.
        ballot: Ballot,
        /// Slot.
        slot: Slot,
        /// The destination's shard (or data-free marker).
        value: WireValue,
    },
    /// Phase-2b.
    Accepted {
        /// Echoed ballot.
        ballot: Ballot,
        /// Echoed slot.
        slot: Slot,
    },
    /// Nack with the higher promised ballot.
    Reject {
        /// Promised ballot.
        promised: Ballot,
    },
    /// A chosen slot (destination-specific shard).
    Commit {
        /// The chosen entry.
        entry: RsChosen,
    },
    /// Leader liveness + commit gossip.
    Heartbeat {
        /// Leader ballot.
        ballot: Ballot,
        /// Leader's first unchosen slot.
        commit_index: Slot,
    },
    /// Ask the leader for chosen entries from `from_slot`.
    CatchupRequest {
        /// First missing slot.
        from_slot: Slot,
    },
    /// Catch-up batch.
    CatchupReply {
        /// Chosen entries, destination-specific.
        entries: Vec<RsChosen>,
    },
    /// Leader → replica: send me your shard of `(key, version)`.
    ShardPull {
        /// Object key.
        key: String,
        /// Version (slot of the put).
        version: u64,
    },
    /// Replica → leader: here is my shard.
    ShardPush {
        /// Object key.
        key: String,
        /// Version.
        version: u64,
        /// Shard index.
        shard_idx: u8,
        /// Shard bytes.
        shard: Bytes,
    },
    /// Client → replica: submit a command.
    Request {
        /// Originating client.
        client: NodeId,
        /// Client request id.
        req_id: u64,
        /// The command.
        cmd: StoreCmd,
    },
    /// Replica → client.
    Response {
        /// Echoed request id.
        req_id: u64,
        /// The response.
        resp: StoreResp,
    },
}

/// Message kind names, indexed by [`RsMsg::kind_index`]. Used to label
/// per-type observability counters.
pub const RS_MSG_KINDS: [&str; 13] = [
    "prepare",
    "promise",
    "accept",
    "accepted",
    "reject",
    "commit",
    "heartbeat",
    "catchup_request",
    "catchup_reply",
    "shard_pull",
    "shard_push",
    "request",
    "response",
];

impl RsMsg {
    /// Stable snake_case name of this message's variant.
    pub fn kind(&self) -> &'static str {
        RS_MSG_KINDS[self.kind_index()]
    }

    /// Index of this variant into [`RS_MSG_KINDS`].
    pub fn kind_index(&self) -> usize {
        match self {
            RsMsg::Prepare { .. } => 0,
            RsMsg::Promise { .. } => 1,
            RsMsg::Accept { .. } => 2,
            RsMsg::Accepted { .. } => 3,
            RsMsg::Reject { .. } => 4,
            RsMsg::Commit { .. } => 5,
            RsMsg::Heartbeat { .. } => 6,
            RsMsg::CatchupRequest { .. } => 7,
            RsMsg::CatchupReply { .. } => 8,
            RsMsg::ShardPull { .. } => 9,
            RsMsg::ShardPush { .. } => 10,
            RsMsg::Request { .. } => 11,
            RsMsg::Response { .. } => 12,
        }
    }
}
