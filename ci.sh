#!/usr/bin/env bash
# Local CI gate: build, test, lint, perf baseline. Run before every push.
#
# The build environment is offline — all external dependencies resolve to
# the vendored shims under vendor/ (see vendor/README.md).
#
# The perf step compares smoke-scale wall times and work counters against
# the committed BENCH_replay.json. Drift is a warning by default (shared
# hardware is noisy); pass --strict to make it fail the gate, and set
# BENCH_THRESHOLD (a fraction, default 0.75) to tune the wall-time bar.
# After an intentional perf or behavior change, re-record with
#   cargo run --release -p bench --bin bench-baseline -- record
#
# The test step includes the chaos suite (tests/chaos.rs): ≥200 seeded
# fault schedules against the live lock and storage clusters — half of
# them with leader batching + accept pipelining enabled — budgeted to
# stay well under 30s. Knobs (see TESTING.md):
#   CHAOS_SCHEDULES=<n>   schedules per sweep (soak: try 500+)
#   CHAOS_SEED=0x<seed>   pin the base seed (failures print the exact
#                         re-run command with the offending seed)
set -euo pipefail
cd "$(dirname "$0")"

STRICT=""
for arg in "$@"; do
  case "$arg" in
    --strict) STRICT="--strict" ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "== cargo build --release =="
cargo build --release --offline --workspace

echo "== cargo test =="
cargo test -q --offline --workspace

echo "== determinism: 1-thread vs default sweep =="
./target/release/repro --quick --seed 2014 fig6 | grep -v '^#' > /tmp/ci_fig6_default.txt
RAYON_NUM_THREADS=1 ./target/release/repro --quick --seed 2014 fig6 | grep -v '^#' > /tmp/ci_fig6_single.txt
diff /tmp/ci_fig6_default.txt /tmp/ci_fig6_single.txt \
  || { echo "sweep rows depend on thread count" >&2; exit 1; }
./target/release/repro --quick --seed 2014 repair | grep -v '^#' > /tmp/ci_repair_default.txt
RAYON_NUM_THREADS=1 ./target/release/repro --quick --seed 2014 repair | grep -v '^#' > /tmp/ci_repair_single.txt
diff /tmp/ci_repair_default.txt /tmp/ci_repair_single.txt \
  || { echo "repair sweep rows depend on thread count" >&2; exit 1; }

echo "== workload smoke + determinism =="
# Quick request-level replay (~20k lock + ~2k storage requests, well
# under 5 s) doubling as the workload-engine determinism gate: arrival
# sampling, command mix, and the DES must be thread-count independent.
./target/release/repro --quick --seed 2014 workload | grep -v '^#' > /tmp/ci_workload_default.txt
RAYON_NUM_THREADS=1 ./target/release/repro --quick --seed 2014 workload | grep -v '^#' > /tmp/ci_workload_single.txt
diff /tmp/ci_workload_default.txt /tmp/ci_workload_single.txt \
  || { echo "workload rows depend on thread count" >&2; exit 1; }
grep -q 'lock batch=8' /tmp/ci_workload_default.txt \
  || { echo "workload smoke: missing lock row" >&2; exit 1; }

echo "== hetero smoke + determinism =="
# Heterogeneous pools + auto-scaler: the strategy race over pool columns
# and the autoscaled replay must be thread-count independent, emit the
# per-type fleet series, and audit at least one scaling decision.
./target/release/repro --quick --seed 2014 hetero | grep -v '^#' > /tmp/ci_hetero_default.txt
RAYON_NUM_THREADS=1 ./target/release/repro --quick --seed 2014 hetero | grep -v '^#' > /tmp/ci_hetero_single.txt
diff /tmp/ci_hetero_default.txt /tmp/ci_hetero_single.txt \
  || { echo "hetero rows depend on thread count" >&2; exit 1; }
grep -q 'pool.fleet.m1.small' /tmp/ci_hetero_default.txt \
  || { echo "hetero smoke: missing m1.small fleet series" >&2; exit 1; }
grep -q 'pool.fleet.m3.large' /tmp/ci_hetero_default.txt \
  || { echo "hetero smoke: missing m3.large fleet series" >&2; exit 1; }
SCALE_AUDITS="$(sed -n 's/^audited scale decisions: \([0-9]*\).*/\1/p' /tmp/ci_hetero_default.txt)"
[[ -n "$SCALE_AUDITS" && "$SCALE_AUDITS" -ge 1 ]] \
  || { echo "hetero smoke: no audited scale decisions" >&2; exit 1; }

echo "== era smoke + determinism =="
# Interruption-era race: the capacity regime's hidden processes and the
# proactive-migration controller must be thread-count independent, the
# bidding-era rows must be byte-identical across repair policies
# (strict additivity), and the sweep must land at least one drain.
./target/release/repro --quick --seed 2014 era | grep -v '^#' > /tmp/ci_era_default.txt
RAYON_NUM_THREADS=1 ./target/release/repro --quick --seed 2014 era | grep -v '^#' > /tmp/ci_era_single.txt
diff /tmp/ci_era_default.txt /tmp/ci_era_single.txt \
  || { echo "era rows depend on thread count" >&2; exit 1; }
diff <(awk '/^bidding/ && $2 == "reactive" { $2 = "POLICY"; print }' /tmp/ci_era_default.txt) \
     <(awk '/^bidding/ && $2 == "migrate"  { $2 = "POLICY"; print }' /tmp/ci_era_default.txt) \
  || { echo "era smoke: migration is not a no-op under the bidding era" >&2; exit 1; }
grep -q '^capacity' /tmp/ci_era_default.txt \
  || { echo "era smoke: missing capacity-era rows" >&2; exit 1; }
DRAINS="$(awk '/^capacity +migrate/ { s += $(NF-1) } END { print s+0 }' /tmp/ci_era_default.txt)"
[[ "$DRAINS" -ge 1 ]] \
  || { echo "era smoke: no pre-deadline drains landed" >&2; exit 1; }

echo "== repro report smoke =="
REPORT_TMP="$(mktemp -d)"
trap 'rm -rf "$REPORT_TMP"' EXIT
./target/release/repro --seed 2014 --report-out "$REPORT_TMP/report.html" report > /dev/null
for artifact in report.html report.html.trace.json report.html.audit.jsonl report.html.alerts.jsonl; do
  [[ -s "$REPORT_TMP/$artifact" ]] \
    || { echo "report smoke: $artifact missing or empty" >&2; exit 1; }
done
# The alert-annotation markers must be present even when nothing fired.
grep -q 'id="alerts"' "$REPORT_TMP/report.html" \
  || { echo "report smoke: alerts section marker missing" >&2; exit 1; }
grep -q 'class="audit-timeline"' "$REPORT_TMP/report.html" \
  || { echo "report smoke: audit timeline marker missing" >&2; exit 1; }

echo "== cargo clippy -D warnings =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== bench-baseline compare =="
if [[ -f BENCH_replay.json ]]; then
  # The trace-overhead guard is always strict: it asserts disabled
  # tracing stays in the low-ns/op range and diffs the trace_bench.*
  # counters — a regression there is a bug, not hardware noise. The
  # trace-derived commit-latency counters (trace.* under
  # lock_service_replay) are exact quantiles over deterministic replays,
  # so the full compare below diffs them too.
  ./target/release/bench-baseline compare \
    --baseline BENCH_replay.json \
    --only trace_overhead \
    --strict
  # Same deal for the monitor guard: disabled watchdog/SLO observes must
  # stay one-boolean cheap, and the SLO alert count is deterministic.
  ./target/release/bench-baseline compare \
    --baseline BENCH_replay.json \
    --only monitor_overhead \
    --strict
  # The workload replay pins request-level p99 and SLO availability for
  # the batched fast path — its counters are deterministic, so any drift
  # is a real behavior change, not noise.
  ./target/release/bench-baseline compare \
    --baseline BENCH_replay.json \
    --only workload_replay \
    --strict
  # The hetero replay pins the auto-scaled mixed-fleet counters
  # (autoscale.* decisions, per-pool launches) — all deterministic.
  ./target/release/bench-baseline compare \
    --baseline BENCH_replay.json \
    --only hetero_replay \
    --strict
  # The era replay pins the capacity-era migration counters (notice.*
  # signal handling, migrate.* drain outcomes) — all deterministic, so
  # drift means the interruption controller changed behavior.
  ./target/release/bench-baseline compare \
    --baseline BENCH_replay.json \
    --only era_replay \
    --strict
  ./target/release/bench-baseline compare \
    --baseline BENCH_replay.json \
    --threshold "${BENCH_THRESHOLD:-0.75}" \
    ${STRICT:+"$STRICT"}
else
  echo "no BENCH_replay.json — recording a fresh baseline"
  ./target/release/bench-baseline record --out BENCH_replay.json
fi

echo "CI OK"
