//! Quorum-size rules shared by the protocol layer and the bidding
//! framework.

/// How large a quorum must be relative to the group size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuorumRule {
    /// Simple majority `⌊n/2⌋ + 1` — classic Paxos, the lock service.
    Majority,
    /// RS-Paxos quorums for θ(m, n) erasure coding: `⌈(n+m)/2⌉`, so any
    /// two quorums intersect in at least `m` replicas and a chosen coded
    /// value stays reconstructible (§5.1.2).
    RsPaxos {
        /// Data-shard count `m` of the erasure code.
        m: usize,
    },
}

impl QuorumRule {
    /// The quorum size for a group of `n` replicas.
    pub fn quorum_size(&self, n: usize) -> usize {
        match self {
            QuorumRule::Majority => n / 2 + 1,
            QuorumRule::RsPaxos { m } => (n + *m).div_ceil(2),
        }
    }

    /// The smallest group size this rule supports (RS-Paxos needs at
    /// least `m` replicas to hold the data shards).
    pub fn min_nodes(&self) -> usize {
        match self {
            QuorumRule::Majority => 1,
            QuorumRule::RsPaxos { m } => *m,
        }
    }

    /// Failures tolerated at group size `n`.
    pub fn failure_tolerance(&self, n: usize) -> usize {
        n - self.quorum_size(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_sizes() {
        assert_eq!(QuorumRule::Majority.quorum_size(5), 3);
        assert_eq!(QuorumRule::Majority.quorum_size(4), 3);
        assert_eq!(QuorumRule::Majority.quorum_size(1), 1);
        assert_eq!(QuorumRule::RsPaxos { m: 3 }.quorum_size(5), 4);
        assert_eq!(QuorumRule::RsPaxos { m: 1 }.quorum_size(5), 3);
        assert_eq!(QuorumRule::RsPaxos { m: 4 }.quorum_size(7), 6);
    }

    #[test]
    fn tolerance_matches_paper() {
        // 5-node lock service tolerates 2; θ(3,5) storage tolerates 1.
        assert_eq!(QuorumRule::Majority.failure_tolerance(5), 2);
        assert_eq!(QuorumRule::RsPaxos { m: 3 }.failure_tolerance(5), 1);
    }

    #[test]
    fn min_nodes() {
        assert_eq!(QuorumRule::Majority.min_nodes(), 1);
        assert_eq!(QuorumRule::RsPaxos { m: 3 }.min_nodes(), 3);
    }
}
