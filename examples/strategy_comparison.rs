//! A miniature of Figures 6/7: replay the lock service over the market
//! under Jupiter and the Extra heuristics, and print the cost/availability
//! trade-off that is the paper's core result — plus the observability
//! layer's view of each replay (bids, deaths by cause, decision timing).
//!
//! ```text
//! cargo run --release --example strategy_comparison
//! ```

use spot_jupiter::jupiter::{BiddingStrategy, ExtraStrategy, JupiterStrategy, ServiceSpec};
use spot_jupiter::obs::export::prometheus_text;
use spot_jupiter::obs::{MetricsSnapshot, Obs, Registry};
use spot_jupiter::replay::lifecycle::{on_demand_baseline_cost, replay_strategy_observed};
use spot_jupiter::replay::ReplayConfig;
use spot_jupiter::spot_market::{InstanceType, Market, MarketConfig};

fn main() {
    // 4 training weeks + 2 evaluation weeks, 12 zones.
    let train = 4 * 7 * 24 * 60;
    let eval = 2 * 7 * 24 * 60;
    let mut cfg = MarketConfig::paper(2015, train + eval);
    cfg.zones.truncate(12);
    cfg.types = vec![InstanceType::M1Small];
    let market = Market::generate(cfg);
    let spec = ServiceSpec::lock_service();
    let config = ReplayConfig::new(train, train + eval, 6);

    // Each strategy is built against its own Obs so the metric streams
    // stay separable (Jupiter additionally records its decision metrics).
    type Factory = Box<dyn Fn(&Obs) -> Box<dyn BiddingStrategy>>;
    let strategies: Vec<Factory> = vec![
        Box::new(|o| Box::new(JupiterStrategy::new().with_obs(o.clone()))),
        Box::new(|_| Box::new(ExtraStrategy::new(0, 0.2))),
        Box::new(|_| Box::new(ExtraStrategy::new(2, 0.2))),
    ];

    println!(
        "lock service, 2 evaluated weeks, 6 h bidding interval, {} zones\n",
        market.zones().len()
    );
    println!(
        "{:<14} {:>10} {:>13} {:>16} {:>7}",
        "strategy", "cost ($)", "availability", "downtime (min)", "kills"
    );
    // One Obs per strategy so the metric streams stay separable; each
    // registry is then folded into one combined registry under a
    // per-strategy prefix, so a single export carries the whole run.
    let combined = Registry::new();
    let mut snapshots: Vec<(String, MetricsSnapshot)> = Vec::new();
    for make in &strategies {
        let (obs, _clock) = Obs::simulated();
        let r = replay_strategy_observed(&market, &spec, make(&obs), config, &obs);
        println!(
            "{:<14} {:>10.2} {:>13.6} {:>16} {:>7}",
            r.strategy,
            r.total_cost.as_dollars(),
            r.availability(),
            r.downtime_minutes(),
            r.total_kills()
        );
        combined.merge_prefixed(&obs.metrics, &format!("{}.", r.strategy));
        snapshots.push((
            r.strategy.clone(),
            r.metrics.unwrap_or_else(|| obs.metrics.snapshot()),
        ));
    }
    let baseline = on_demand_baseline_cost(&market, &spec, config);
    println!(
        "{:<14} {:>10.2} {:>13.6} {:>16} {:>7}",
        "Baseline",
        baseline.as_dollars(),
        spec.baseline_availability(),
        "-",
        0
    );

    println!("\n== observability: what each strategy actually did ==");
    println!(
        "{:<14} {:>6} {:>9} {:>10} {:>9} {:>8} {:>13}",
        "strategy", "bids", "granted", "oob death", "boundary", "end", "same-minute"
    );
    for (name, snap) in &snapshots {
        println!(
            "{:<14} {:>6} {:>9} {:>10} {:>9} {:>8} {:>13}",
            name,
            snap.counter("replay.bids_placed").unwrap_or(0),
            snap.counter_family("replay.granted."),
            snap.counter("replay.death.out_of_bid").unwrap_or(0),
            snap.counter("replay.death.boundary").unwrap_or(0),
            snap.counter("replay.death.end_of_replay").unwrap_or(0),
            snap.counter("replay.same_minute_death").unwrap_or(0),
        );
    }

    println!("\n== observability: decision-making cost (Jupiter only) ==");
    let jupiter = &snapshots[0].1;
    if let Some(h) = jupiter.histogram("jupiter.decide_micros") {
        println!(
            "decide():   {} calls, p50 {} µs, p95 {} µs, max {} µs",
            h.count, h.p50, h.p95, h.max
        );
    }
    if let Some(h) = jupiter.histogram("jupiter.forecast_micros") {
        println!(
            "forecast(): {} calls, p50 {} µs, p95 {} µs, max {} µs",
            h.count, h.p50, h.p95, h.max
        );
    }
    println!(
        "candidates: {} node counts evaluated, {} feasible",
        jupiter.counter("jupiter.candidates_evaluated").unwrap_or(0),
        jupiter.counter("jupiter.candidates_feasible").unwrap_or(0),
    );

    println!("\n== observability: combined registry (Prometheus exposition) ==");
    let combined_snap = combined.snapshot();
    println!(
        "{} counters from {} strategies in one registry; bids across all: {}",
        combined_snap.counters.len(),
        snapshots.len(),
        snapshots
            .iter()
            .map(|(name, _)| combined_snap
                .counter(&format!("{name}.replay.bids_placed"))
                .unwrap_or(0))
            .sum::<u64>()
    );
    for line in prometheus_text(&combined_snap)
        .lines()
        .filter(|l| l.contains("bids_placed"))
    {
        println!("  {line}");
    }

    println!(
        "\nThe paper's claim, in miniature: only the failure-model-driven\n\
         bids hold the availability level, and they do so at a fraction of\n\
         the on-demand cost. Extra(0,p) is cheap but fails; Extra(2,p)\n\
         buys availability with two more instances and still falls short."
    );
}
