//! System-level property tests: accounting invariants of the trace-replay
//! engine under randomized markets and strategies.

use proptest::prelude::*;
use spot_jupiter::jupiter::{ExtraStrategy, ServiceSpec};
use spot_jupiter::replay::lifecycle::replay_strategy;
use spot_jupiter::replay::ReplayConfig;
use test_util::market_days as market;

proptest! {
    // Each case replays several simulated days; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn replay_accounting_invariants(
        seed in any::<u64>(),
        zones in 4usize..8,
        extra in 0usize..3,
        portion in 0.05f64..0.4,
        interval in 1u64..12,
    ) {
        let m = market(seed, zones, 6);
        let spec = ServiceSpec::lock_service();
        let train = 3 * 24 * 60;
        let config = ReplayConfig::new(train, 6 * 24 * 60, interval);
        let r = replay_strategy(&m, &spec, ExtraStrategy::new(extra, portion), config);

        // Window accounting.
        prop_assert_eq!(r.window_minutes, 3 * 24 * 60);
        prop_assert!(r.up_minutes <= r.window_minutes);

        // Interval accounting: up time bounded by interval length; the
        // intervals tile the window.
        let mut covered = 0;
        for (i, iv) in r.intervals.iter().enumerate() {
            let end = r
                .intervals
                .get(i + 1)
                .map(|n| n.start)
                .unwrap_or(config.eval_end);
            prop_assert!(iv.up_minutes <= end - iv.start, "interval overflow");
            covered += end - iv.start;
        }
        prop_assert_eq!(covered, r.window_minutes);
        let interval_up: u64 = r.intervals.iter().map(|i| i.up_minutes).sum();
        prop_assert_eq!(interval_up, r.up_minutes);

        // Instance records: lifetimes ordered and inside the horizon; the
        // total cost is exactly the sum of the per-instance charges.
        let mut total = spot_jupiter::spot_market::Price::ZERO;
        for rec in &r.instances {
            prop_assert!(rec.granted_at <= rec.ended_at);
            prop_assert!(rec.ended_at <= config.eval_end);
            total += rec.cost;
        }
        prop_assert_eq!(total, r.total_cost);

        // Determinism: the same inputs replay identically.
        let r2 = replay_strategy(&m, &spec, ExtraStrategy::new(extra, portion), config);
        prop_assert_eq!(r.total_cost, r2.total_cost);
        prop_assert_eq!(r.up_minutes, r2.up_minutes);
        prop_assert_eq!(r.instances.len(), r2.instances.len());
    }

    #[test]
    fn higher_extra_portion_never_hurts_availability(
        seed in any::<u64>(),
    ) {
        // Bidding a larger margin over the spot price weakly improves
        // availability in an identical market (same zones chosen: the
        // zone pick of Extra depends only on spot prices, not the
        // portion).
        let m = market(seed, 6, 5);
        let spec = ServiceSpec::lock_service();
        let config = ReplayConfig::new(2 * 24 * 60, 5 * 24 * 60, 3);
        let low = replay_strategy(&m, &spec, ExtraStrategy::new(0, 0.05), config);
        let high = replay_strategy(&m, &spec, ExtraStrategy::new(0, 0.6), config);
        prop_assert!(
            high.availability() >= low.availability() - 1e-12,
            "higher bids reduced availability: {} vs {}",
            high.availability(),
            low.availability()
        );
    }
}
