//! The feasibility demo (§5.4, service level): run the *actual* Paxos
//! lock service while Jupiter bids for its spot instances — out-of-bid
//! kills crash live replicas, replacements join through Paxos view
//! change, and a closed-loop client measures what the users would see.
//!
//! ```text
//! cargo run --release --example lock_service
//! ```

use spot_jupiter::jupiter::JupiterStrategy;
use spot_jupiter::replay::service_level::{lock_service_replay, ServiceReplayConfig};
use spot_jupiter::spot_market::{InstanceType, Market, MarketConfig};

fn main() {
    // Four weeks of training history + a 12-hour evaluated window.
    let train = 4 * 7 * 24 * 60;
    let window = 12 * 60;
    let mut cfg = MarketConfig::paper(7, train + window + 60);
    cfg.types = vec![InstanceType::M1Small];
    let market = Market::generate(cfg);

    println!("replaying a 12-hour market window against a live Paxos lock service…");
    let out = lock_service_replay(
        &market,
        JupiterStrategy::new(),
        ServiceReplayConfig {
            eval_start: train,
            window_minutes: window,
            interval_hours: 3,
            sla_ms: 5_000,
            seed: 99,
        },
    );

    println!("\n— service-level outcome —");
    println!("lock ops completed:   {}", out.ops_completed);
    println!("ops unfinished:       {}", out.ops_unfinished);
    println!(
        "mean latency:         {:.0} ms (simulated)",
        out.mean_latency_ms
    );
    println!("max latency:          {} ms", out.max_latency_ms);
    println!("within 5 s SLA:       {:.2}%", 100.0 * out.sla_fraction);
    println!("view changes:         {}", out.reconfigs);
    println!("out-of-bid crashes:   {}", out.crashes);
    println!("agreed log prefix:    {} entries", out.agreed_log_len);
    println!(
        "\nThe replicas crashed by the market never broke agreement: every\n\
         surviving replica applied the identical command sequence."
    );
}
