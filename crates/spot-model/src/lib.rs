//! # spot-model — the spot-instance failure model (§3.1, §4.2)
//!
//! The paper's central modelling contribution: estimate the probability
//! that a spot instance under bid `b` suffers an out-of-bid failure during
//! the next bidding interval, from the spot-price history alone.
//!
//! * [`kernel`] — the discrete **semi-Markov chain** over unique spot
//!   prices. Sojourn times are discretized to one minute (Eq. 12) and the
//!   stochastic kernel `q_{i,j,k} = P(next = s_j, sojourn = k | cur = s_i)`
//!   is estimated with the empirical (MLE-like) estimator of Eq. 13,
//!   `q̂ = N_{i,j}^k / N_i`. Counting happens in an append-only
//!   [`KernelBuilder`]; queries run against the immutable, sorted
//!   [`FrozenKernel`], which is cheap to share (`Arc` per state table) and
//!   to fork copy-on-write as new price data arrives ("with more spot
//!   prices data collected, the estimation can be improved").
//! * [`forecast`] — forward evolution of the semi-Markov state
//!   distribution, conditioned on the current price *and its elapsed
//!   sojourn* (the non-memoryless part). Produces, for each price level,
//!   the expected fraction of the next interval during which the market
//!   price exceeds that level — the discretized Eq. 5.
//! * [`failure`] — the user-facing [`failure::FailureModel`]: combines the
//!   out-of-bid probability with the constant instance failure probability
//!   `FP⁰ = 0.01` of an on-demand instance (Eq. 4/14), answers
//!   `estimate_fp(bid, …)` and the minimal-bid query the bidding algorithm
//!   needs, and offers an *absorbing* (survival) variant used by the
//!   ablation experiments.

pub mod backtest;
pub mod failure;
pub mod forecast;
pub mod kernel;

pub use backtest::{backtest, BidRule, CalibrationReport};
pub use failure::{FailureModel, FailureModelConfig};
pub use forecast::{Forecast, ForecastConfig};
pub use kernel::{FrozenKernel, KernelBuilder, MAX_SOJOURN_MINUTES};

/// The failure probability of an on-demand instance per the EC2 SLA the
/// paper cites: measured availability ≈ 0.99 ⇒ FP⁰ = 0.01 (§3.1).
pub const ON_DEMAND_FP: f64 = 0.01;
