//! Availability computations (Eq. 1) — exact, three algorithms.
//!
//! * [`acceptance_availability`] — exhaustive over all `2^n` subsets; works
//!   for arbitrary acceptance predicates, exponential in `n`.
//! * [`threshold_availability`] — Poisson-binomial tail via an O(n²)
//!   dynamic program; exact for `k`-of-`n` systems.
//! * [`weighted_availability`] — dynamic program over achievable weight
//!   sums, O(n·W); exact for weighted majorities.

use crate::acceptance::Mask;
use crate::systems::QuorumSystem;

/// Probability that the live-node set satisfies `accept`, with node `i`
/// failing independently with probability `fps[i]` (Eq. 1).
pub fn acceptance_availability(n: usize, fps: &[f64], accept: impl Fn(Mask) -> bool) -> f64 {
    assert_eq!(fps.len(), n);
    assert!(n <= 30, "enumeration over 2^{n} subsets is infeasible");
    for &p in fps {
        assert!((0.0..=1.0).contains(&p), "failure probability {p} invalid");
    }
    let mut total = 0.0;
    for mask in 0..(1u64 << n) as Mask {
        if !accept(mask) {
            continue;
        }
        let mut prob = 1.0;
        for (i, &p) in fps.iter().enumerate() {
            prob *= if mask & (1 << i) != 0 { 1.0 - p } else { p };
        }
        total += prob;
    }
    total
}

/// Probability that at least `k` of the nodes are alive (Poisson-binomial
/// tail). `O(n²)` dynamic program over the count of live nodes.
///
/// ```
/// use quorum::threshold_availability;
///
/// // The paper's §3 example: 5 nodes at failure probability 0.01 with a
/// // majority quorum have availability 0.9999901494 (~25.5 s downtime
/// // per month).
/// let a = threshold_availability(&[0.01; 5], 3);
/// assert!((a - 0.9999901494).abs() < 1e-10);
/// ```
pub fn threshold_availability(fps: &[f64], k: usize) -> f64 {
    let n = fps.len();
    assert!(k <= n, "threshold {k} above universe {n}");
    for &p in fps {
        assert!((0.0..=1.0).contains(&p), "failure probability {p} invalid");
    }
    // dist[j] = P(exactly j alive among the first i nodes).
    let mut dist = vec![0.0f64; n + 1];
    dist[0] = 1.0;
    for (i, &p) in fps.iter().enumerate() {
        let alive = 1.0 - p;
        for j in (0..=i).rev() {
            let d = dist[j];
            dist[j + 1] += d * alive;
            dist[j] = d * p;
        }
    }
    dist[k..].iter().sum()
}

/// Probability that the total weight of live nodes strictly exceeds half
/// the total weight. `O(n · W)` dynamic program over weight sums.
pub fn weighted_availability(weights: &[u64], fps: &[f64]) -> f64 {
    assert_eq!(weights.len(), fps.len());
    let total: u64 = weights.iter().sum();
    assert!(total > 0, "all-zero weights");
    let total = total as usize;
    // dist[w] = P(live weight == w).
    let mut dist = vec![0.0f64; total + 1];
    dist[0] = 1.0;
    for (&w, &p) in weights.iter().zip(fps) {
        assert!((0.0..=1.0).contains(&p), "failure probability {p} invalid");
        let alive = 1.0 - p;
        let w = w as usize;
        if w == 0 {
            continue; // dummies don't shift weight
        }
        for s in (0..=total - w).rev() {
            let d = dist[s];
            dist[s + w] += d * alive;
            dist[s] = d * p;
        }
    }
    // Strict majority of weight: 2·live > total.
    dist.iter()
        .enumerate()
        .filter(|(s, _)| 2 * s > total)
        .map(|(_, &p)| p)
        .sum()
}

/// Availability of any [`QuorumSystem`] by exhaustive enumeration —
/// reference implementation for cross-checking the DPs.
pub fn system_availability<Q: QuorumSystem>(system: &Q, fps: &[f64]) -> f64 {
    acceptance_availability(system.n(), fps, |m| system.is_quorum(m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_via_threshold_dp() {
        // 5 nodes, p = 0.01, majority 3 ⇒ 0.9999901494 (§3).
        let av = threshold_availability(&[0.01; 5], 3);
        assert!((av - 0.9999901494).abs() < 1e-10, "got {av}");
    }

    #[test]
    fn paper_downtime_numbers() {
        // 0.9999901494 availability ⇒ ~25.5 s downtime in a 30-day month.
        let av = threshold_availability(&[0.01; 5], 3);
        let downtime_secs = (1.0 - av) * 30.0 * 24.0 * 3600.0;
        assert!((downtime_secs - 25.5).abs() < 0.1, "got {downtime_secs}");
    }

    #[test]
    fn threshold_edge_cases() {
        // k = 0 is always available; k = n requires all alive.
        assert_eq!(threshold_availability(&[0.3, 0.4], 0), 1.0);
        let all = threshold_availability(&[0.3, 0.4], 2);
        assert!((all - 0.7 * 0.6).abs() < 1e-12);
        // Empty universe with k = 0: vacuously available.
        assert_eq!(threshold_availability(&[], 0), 1.0);
    }

    #[test]
    fn heterogeneous_threshold_matches_enumeration() {
        let fps = [0.01, 0.1, 0.2, 0.05, 0.3, 0.15, 0.08];
        for k in 0..=7 {
            let dp = threshold_availability(&fps, k);
            let brute = acceptance_availability(7, &fps, |m| m.count_ones() as usize >= k);
            assert!((dp - brute).abs() < 1e-12, "k={k}: {dp} vs {brute}");
        }
    }

    #[test]
    fn weighted_matches_enumeration() {
        let fps = [0.05, 0.2, 0.1, 0.4];
        let weights = [5u64, 2, 2, 1];
        let total: u64 = weights.iter().sum();
        let dp = weighted_availability(&weights, &fps);
        let brute = acceptance_availability(4, &fps, |m| {
            let live: u64 = weights
                .iter()
                .enumerate()
                .filter(|(i, _)| m & (1 << i) != 0)
                .map(|(_, &w)| w)
                .sum();
            2 * live > total
        });
        assert!((dp - brute).abs() < 1e-12);
    }

    #[test]
    fn dummy_weights_are_ignored() {
        // A node with weight 0 and terrible availability must not affect
        // the result.
        let a = weighted_availability(&[1, 1, 1], &[0.01, 0.02, 0.03]);
        let b = weighted_availability(&[1, 1, 1, 0], &[0.01, 0.02, 0.03, 0.99]);
        assert!((a - b).abs() < 1e-15);
    }

    #[test]
    fn availability_monotone_in_node_reliability() {
        let base = threshold_availability(&[0.1; 5], 3);
        let better = threshold_availability(&[0.1, 0.1, 0.05, 0.1, 0.1], 3);
        let worse = threshold_availability(&[0.1, 0.1, 0.2, 0.1, 0.1], 3);
        assert!(better > base && base > worse);
    }

    #[test]
    fn more_nodes_at_same_fp_increase_majority_availability() {
        // 5 nodes tolerate 2 failures; 7 tolerate 3 — availability rises.
        let five = threshold_availability(&[0.05; 5], 3);
        let seven = threshold_availability(&[0.05; 7], 4);
        assert!(seven > five);
    }
}
