//! Scenario fixtures shared by the integration suites: the synthetic
//! markets and protocol clusters the tests previously each hand-rolled.

use paxos::{Cluster, LockService, ReplicaConfig};
use simnet::NetworkConfig;
use spot_market::{InstanceType, Market, MarketConfig};
use storage::{RsCluster, RsConfig};

/// A small paper-parameterized market: `weeks` of history across the
/// first `zones` availability zones, m1.small only.
pub fn quick_market(seed: u64, weeks: u64, zones: usize) -> Market {
    let mut cfg = MarketConfig::paper(seed, weeks * 7 * 24 * 60);
    cfg.zones.truncate(zones.max(1));
    cfg.types = vec![InstanceType::M1Small];
    Market::generate(cfg)
}

/// A day-granularity market for property tests; `zones` is clamped to
/// the 2–8 range the replay engine is exercised at.
pub fn market_days(seed: u64, zones: usize, days: u64) -> Market {
    let mut cfg = MarketConfig::paper(seed, days * 24 * 60);
    cfg.zones.truncate(zones.clamp(2, 8));
    cfg.types = vec![InstanceType::M1Small];
    Market::generate(cfg)
}

/// A `n`-replica Paxos lock-service cluster on the default WAN model,
/// with the given replica configuration (pass
/// [`ReplicaConfig::default`] unless the test needs otherwise).
pub fn lock_cluster(n: usize, cfg: ReplicaConfig, seed: u64) -> Cluster<LockService> {
    Cluster::new(n, LockService::new(), cfg, NetworkConfig::default(), seed)
}

/// A θ(m, n) RS-Paxos storage cluster on the default WAN model.
pub fn storage_cluster(n: usize, cfg: RsConfig, seed: u64) -> RsCluster {
    RsCluster::new(n, cfg, NetworkConfig::default(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markets_are_seed_deterministic() {
        let a = quick_market(3, 1, 4);
        let b = quick_market(3, 1, 4);
        assert_eq!(a.zones(), b.zones());
        assert_eq!(a.horizon(), b.horizon());
        let z = a.zones()[0];
        let ty = InstanceType::M1Small;
        for minute in [0, 100, 1_000] {
            assert_eq!(
                a.trace(z, ty).price_at(minute),
                b.trace(z, ty).price_at(minute)
            );
        }
    }

    #[test]
    fn clamped_zone_counts() {
        assert_eq!(market_days(1, 0, 1).zones().len(), 2);
        assert_eq!(market_days(1, 100, 1).zones().len(), 8);
    }
}
