#!/usr/bin/env bash
# Local CI gate: build, test, lint. Run before every push.
#
# The build environment is offline — all external dependencies resolve to
# the vendored shims under vendor/ (see vendor/README.md).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --offline --workspace

echo "== cargo test =="
cargo test -q --offline --workspace

echo "== cargo clippy -D warnings =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "CI OK"
