//! Hidden capacity processes for the post-2017 spot era.
//!
//! The paper's market kills an instance the minute the spot price
//! exceeds its bid. Since AWS removed true bidding (2017), the real
//! interruption process is *capacity-driven*: a hidden per-pool supply
//! signal occasionally runs dry, the provider reclaims the instance, and
//! the tenant gets a two-minute interruption notice — preceded, often,
//! by a softer rebalance recommendation. This module models that regime
//! as a seeded, deterministic process per `(zone, instance-type)` pool,
//! reusing the AR(1) idioms of [`crate::ar`]:
//!
//! * a banded AR(1) *headroom* signal walks at Poisson-ish arrival
//!   times, with a per-pool personality drawn from the pool's own
//!   seeded stream;
//! * the first descent through `rebalance_threshold` emits a
//!   [`RebalanceSignal`] (the early warning);
//! * a descent through `reclaim_threshold` schedules a reclamation at
//!   that minute, with its [`InterruptionNotice`] emitted
//!   `notice_lead_minutes` earlier; the kill itself frees capacity, so
//!   the signal resets to its mean and the pool re-arms.
//!
//! On top of the idiosyncratic pool signal, each *zone* carries a sparse
//! seeded schedule of capacity *crunches* — short windows in which every
//! pool in the zone reclaims (with a small per-pool jitter). Crunches
//! are what make same-zone pools correlated and cross-zone pools
//! independent, i.e. what a diversification-aware strategy can exploit.
//!
//! Everything here is a pure function of `(seed, zone, type, params,
//! horizon)`: pools never read each other's streams, so truncating the
//! zone list or dropping a type leaves every remaining pool's notices
//! byte-identical.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::instance::InstanceType;
use crate::topology::Zone;

/// Which interruption regime a replay runs the market under.
///
/// `Bidding` is the paper's regime: out-of-bid termination, exactly as
/// before (the default — byte-identical to every pre-era replay).
/// `CapacityReclaim` replaces bid-vs-price kills with the hidden
/// capacity process: bids become capped-price declarations (they still
/// gate grants and cap billing, but never kill), and instances die only
/// when their pool reclaims.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BidEra {
    /// Pre-2017 spot: out-of-bid termination (the paper's model).
    #[default]
    Bidding,
    /// Post-2017 spot: capacity-driven reclamation with advance notice.
    CapacityReclaim,
}

impl BidEra {
    /// Short lowercase label for series prefixes and reports.
    pub fn label(&self) -> &'static str {
        match self {
            BidEra::Bidding => "bidding",
            BidEra::CapacityReclaim => "capacity",
        }
    }
}

impl std::fmt::Display for BidEra {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Parameters of the hidden per-pool capacity process.
#[derive(Clone, Copy, Debug)]
pub struct CapacityParams {
    /// Stationary mean of the headroom signal (fraction of pool supply
    /// held free).
    pub mean_headroom: f64,
    /// AR(1) persistence of the headroom signal.
    pub phi: f64,
    /// Innovation standard deviation.
    pub sigma: f64,
    /// Reclamation threshold: a descent through this headroom level
    /// reclaims the pool's instance at that minute.
    pub reclaim_threshold: f64,
    /// Rebalance-recommendation threshold (early warning); must be
    /// above `reclaim_threshold`.
    pub rebalance_threshold: f64,
    /// Mean minutes between headroom updates (exponential arrivals,
    /// like [`crate::ar::ArParams::mean_update_minutes`]).
    pub mean_update_minutes: f64,
    /// Minutes of advance notice before a reclamation lands (the
    /// spot-market's "2-minute warning").
    pub notice_lead_minutes: u64,
    /// Mean minutes between zone-wide capacity crunches (0 disables
    /// them); during a crunch every pool in the zone reclaims within a
    /// few jitter minutes.
    pub mean_crunch_minutes: f64,
}

impl Default for CapacityParams {
    fn default() -> Self {
        CapacityParams {
            mean_headroom: 0.32,
            phi: 0.92,
            sigma: 0.045,
            reclaim_threshold: 0.06,
            rebalance_threshold: 0.14,
            mean_update_minutes: 7.0,
            notice_lead_minutes: 2,
            mean_crunch_minutes: 4.0 * 24.0 * 60.0,
        }
    }
}

/// The advance warning a pool emits before reclaiming its instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InterruptionNotice {
    /// Zone of the pool being reclaimed.
    pub zone: Zone,
    /// Instance type of the pool being reclaimed.
    pub instance_type: InstanceType,
    /// Minute the notice is emitted.
    pub at_minute: u64,
    /// Minute the reclamation lands (`at_minute + notice_lead_minutes`).
    pub deadline: u64,
}

/// The softer early warning: the pool's headroom dipped below the
/// rebalance threshold, so a reclamation may follow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RebalanceSignal {
    /// Zone of the pool at risk.
    pub zone: Zone,
    /// Instance type of the pool at risk.
    pub instance_type: InstanceType,
    /// Minute the recommendation is emitted.
    pub at_minute: u64,
}

/// One pool's fully materialized capacity timeline: reclamation minutes
/// (each implying a notice `lead` minutes earlier) and rebalance
/// recommendations, over `[0, horizon)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CapacityProcess {
    zone: Zone,
    instance_type: InstanceType,
    lead: u64,
    /// Reclamation minutes, strictly increasing, each `>= lead`.
    reclaims: Vec<u64>,
    /// Rebalance-recommendation minutes, strictly increasing.
    rebalances: Vec<u64>,
}

impl CapacityProcess {
    /// Materialize the pool's capacity timeline. Pure function of its
    /// arguments; pools never read each other's streams.
    pub fn generate(
        seed: u64,
        zone: Zone,
        ty: InstanceType,
        params: &CapacityParams,
        horizon_minutes: u64,
    ) -> Self {
        let mut rng = rng_for(seed, zone, ty);
        // Per-pool personality, drawn once (mirrors ar.rs): some pools
        // run deeper headroom than others, some are twitchier.
        let mean = params.mean_headroom * rng.gen_range(0.8..1.25);
        let sigma = params.sigma * rng.gen_range(0.7..1.4);
        let phi = (params.phi * rng.gen_range(0.97..1.01)).clamp(0.5, 0.995);
        let lead = params.notice_lead_minutes;

        let mut reclaims: Vec<u64> = Vec::new();
        let mut rebalances: Vec<u64> = Vec::new();
        let mut x = mean;
        let mut minute = 0u64;
        let mut rebalance_armed = true;
        loop {
            let u: f64 = rng.gen::<f64>();
            let u = u.max(1e-12);
            let dt = (-u.ln() * params.mean_update_minutes).ceil().max(1.0) as u64;
            minute += dt;
            if minute >= horizon_minutes {
                break;
            }
            x = mean + phi * (x - mean) + sigma * gauss(&mut rng);
            if x < params.reclaim_threshold {
                // A reclamation needs room for its advance notice; the
                // first `lead` minutes of the horizon cannot reclaim.
                if minute >= lead {
                    reclaims.push(minute);
                }
                // The kill frees supply: the signal recovers to its mean
                // and the early warning re-arms.
                x = mean;
                rebalance_armed = true;
            } else if x < params.rebalance_threshold {
                if rebalance_armed {
                    rebalances.push(minute);
                    rebalance_armed = false;
                }
            } else {
                rebalance_armed = true;
            }
        }

        // Zone-wide crunches, drawn from a *zone-only* stream so every
        // pool in the zone sees the same crunch minutes, then offset by
        // a small pool-specific jitter (from the pool stream, which is
        // already past its personality draws — but use a fresh derived
        // stream so the AR walk above is unperturbed).
        if params.mean_crunch_minutes > 0.0 {
            let mut zrng = rng_for_zone(seed, zone);
            let mut jrng = jitter_rng(seed, zone, ty);
            let mut at = 0u64;
            loop {
                let u: f64 = zrng.gen::<f64>();
                let u = u.max(1e-12);
                let dt = (-u.ln() * params.mean_crunch_minutes).ceil().max(1.0) as u64;
                at += dt;
                if at >= horizon_minutes {
                    break;
                }
                let jitter = jrng.gen_range(0..5u64);
                let kill = at + jitter;
                if kill >= lead && kill < horizon_minutes {
                    reclaims.push(kill);
                    // Crunches come with their own early warning a few
                    // minutes out (the zone is visibly tightening).
                    rebalances.push(kill.saturating_sub(jrng.gen_range(8..20u64)));
                }
            }
            reclaims.sort_unstable();
            reclaims.dedup();
            rebalances.sort_unstable();
            rebalances.dedup();
        }

        CapacityProcess {
            zone,
            instance_type: ty,
            lead,
            reclaims,
            rebalances,
        }
    }

    /// The pool's zone.
    pub fn zone(&self) -> Zone {
        self.zone
    }

    /// The pool's instance type.
    pub fn instance_type(&self) -> InstanceType {
        self.instance_type
    }

    /// The configured notice lead, in minutes.
    pub fn lead(&self) -> u64 {
        self.lead
    }

    /// All reclamation minutes, strictly increasing.
    pub fn reclaims(&self) -> &[u64] {
        &self.reclaims
    }

    /// All rebalance-recommendation minutes, strictly increasing.
    pub fn rebalances(&self) -> &[u64] {
        &self.rebalances
    }

    /// The first reclamation at or after `from`, strictly before
    /// `until`.
    pub fn next_reclaim_at(&self, from: u64, until: u64) -> Option<u64> {
        let idx = self.reclaims.partition_point(|&m| m < from);
        self.reclaims.get(idx).copied().filter(|&m| m < until)
    }

    /// Every interruption notice whose *emission* minute falls in
    /// `[from, until)`.
    pub fn notices_in(&self, from: u64, until: u64) -> Vec<InterruptionNotice> {
        self.reclaims
            .iter()
            .map(|&d| InterruptionNotice {
                zone: self.zone,
                instance_type: self.instance_type,
                at_minute: d - self.lead,
                deadline: d,
            })
            .filter(|n| n.at_minute >= from && n.at_minute < until)
            .collect()
    }

    /// Every rebalance recommendation emitted in `[from, until)`.
    pub fn rebalances_in(&self, from: u64, until: u64) -> Vec<RebalanceSignal> {
        self.rebalances
            .iter()
            .filter(|&&m| m >= from && m < until)
            .map(|&m| RebalanceSignal {
                zone: self.zone,
                instance_type: self.instance_type,
                at_minute: m,
            })
            .collect()
    }

    /// The latest rebalance recommendation at or before `deadline` but
    /// not earlier than `floor` — the earliest actionable warning for a
    /// reclamation at `deadline`.
    pub fn last_rebalance_before(&self, deadline: u64, floor: u64) -> Option<u64> {
        let idx = self.rebalances.partition_point(|&m| m <= deadline);
        self.rebalances[..idx]
            .iter()
            .rev()
            .copied()
            .find(|&m| m >= floor)
    }
}

/// Gaussian via Box–Muller, same idiom as [`crate::ar`].
fn gauss(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Pool-stream seeding: the ar.rs mixer, salted so capacity streams are
/// decorrelated from the price streams built from the same market seed.
fn rng_for(seed: u64, zone: Zone, ty: InstanceType) -> ChaCha8Rng {
    let mut x = (seed ^ 0x9E37_79B9_7F4A_7C15)
        .wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        .wrapping_add(zone.ordinal() as u64 + 211)
        .wrapping_mul(0x1656_67B1_9E37_79F9)
        .wrapping_add(ty as u64 + 23);
    x ^= x >> 30;
    ChaCha8Rng::seed_from_u64(x)
}

/// Zone-stream seeding for crunch minutes: type-independent, so every
/// pool in a zone shares the same crunch schedule.
fn rng_for_zone(seed: u64, zone: Zone) -> ChaCha8Rng {
    let mut x = (seed ^ 0xD1B5_4A32_D192_ED03)
        .wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        .wrapping_add(zone.ordinal() as u64 + 307);
    x ^= x >> 30;
    ChaCha8Rng::seed_from_u64(x)
}

/// Per-pool jitter stream for crunch offsets, separate from the AR walk
/// stream so crunch parameters never perturb the idiosyncratic signal.
fn jitter_rng(seed: u64, zone: Zone, ty: InstanceType) -> ChaCha8Rng {
    let mut x = (seed ^ 0xA24B_AED4_963E_E407)
        .wrapping_mul(0x9FB2_1C65_1E98_DF25)
        .wrapping_add(zone.ordinal() as u64 * 131 + ty as u64 + 7);
    x ^= x >> 29;
    ChaCha8Rng::seed_from_u64(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::all_zones;

    const HORIZON: u64 = 2 * 7 * 24 * 60;

    fn process(seed: u64, zi: usize, ty: InstanceType) -> CapacityProcess {
        CapacityProcess::generate(seed, all_zones()[zi], ty, &CapacityParams::default(), HORIZON)
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = process(2014, 0, InstanceType::M1Small);
        let b = process(2014, 0, InstanceType::M1Small);
        assert_eq!(a, b);
        let c = process(2015, 0, InstanceType::M1Small);
        assert_ne!(a, c, "different seeds give different timelines");
    }

    #[test]
    fn reclaims_are_increasing_and_leave_room_for_the_notice() {
        for seed in 0..20 {
            let p = process(seed, 1, InstanceType::M1Small);
            let mut last = 0;
            for &d in p.reclaims() {
                assert!(d >= p.lead(), "reclaim at {d} has no room for its notice");
                assert!(d > last || last == 0, "reclaims must increase");
                assert!(d < HORIZON);
                last = d;
            }
        }
    }

    #[test]
    fn every_reclaim_has_a_notice_at_the_configured_lead() {
        let p = process(7, 2, InstanceType::M1Small);
        let notices = p.notices_in(0, HORIZON);
        assert_eq!(notices.len(), p.reclaims().len());
        for (n, &d) in notices.iter().zip(p.reclaims()) {
            assert_eq!(n.deadline, d);
            assert_eq!(n.deadline - n.at_minute, p.lead());
            assert_eq!(n.zone, p.zone());
            assert_eq!(n.instance_type, p.instance_type());
        }
    }

    #[test]
    fn default_rate_is_a_few_reclaims_per_pool_week() {
        let mut total = 0usize;
        let pools = 8;
        for zi in 0..pools {
            total += process(2014, zi, InstanceType::M1Small).reclaims().len();
        }
        let per_pool_week = total as f64 / pools as f64 / 2.0;
        assert!(
            (0.5..40.0).contains(&per_pool_week),
            "implausible reclaim rate: {per_pool_week}/pool-week"
        );
    }

    #[test]
    fn same_zone_pools_share_crunch_minutes() {
        let a = process(11, 3, InstanceType::M1Small);
        let b = process(11, 3, InstanceType::M3Large);
        // Crunch kills land within the 0..5-minute jitter of the shared
        // zone crunch; find at least one such correlated pair.
        let correlated = a.reclaims().iter().any(|&ra| {
            b.reclaims().iter().any(|&rb| ra.abs_diff(rb) <= 8)
        });
        assert!(correlated, "same-zone pools must share capacity crunches");
    }

    #[test]
    fn pools_are_independent_streams() {
        // Pool A's timeline is a pure function of (seed, zone, type):
        // generating with or without other pools in existence cannot
        // change it, and its notices only ever name itself.
        let alone = process(5, 0, InstanceType::M1Small);
        let _other = process(5, 4, InstanceType::C3Large);
        let again = process(5, 0, InstanceType::M1Small);
        assert_eq!(alone, again);
        for n in alone.notices_in(0, HORIZON) {
            assert_eq!((n.zone, n.instance_type), (alone.zone(), alone.instance_type()));
        }
    }

    #[test]
    fn range_queries_are_consistent() {
        let p = process(3, 1, InstanceType::M1Small);
        let all = p.notices_in(0, HORIZON).len();
        let mid = HORIZON / 2;
        let split = p.notices_in(0, mid).len() + p.notices_in(mid, HORIZON).len();
        assert_eq!(all, split, "half-open ranges must partition");
        if let Some(&first) = p.reclaims().first() {
            assert_eq!(p.next_reclaim_at(0, HORIZON), Some(first));
            assert_eq!(p.next_reclaim_at(first + 1, first + 1), None);
        }
    }

    #[test]
    fn rebalance_warnings_usually_precede_reclaims() {
        // The headroom signal descends through the rebalance band before
        // the reclaim band, and crunches emit their own warning — so a
        // healthy majority of reclaims have an actionable earlier signal.
        let mut warned = 0usize;
        let mut total = 0usize;
        for zi in 0..6 {
            let p = process(2014, zi, InstanceType::M1Small);
            for &d in p.reclaims() {
                total += 1;
                if p.last_rebalance_before(d, d.saturating_sub(45)).is_some() {
                    warned += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            warned * 2 > total,
            "only {warned}/{total} reclaims had an early warning"
        );
    }

    #[test]
    fn era_labels_are_stable() {
        assert_eq!(BidEra::default(), BidEra::Bidding);
        assert_eq!(BidEra::Bidding.label(), "bidding");
        assert_eq!(BidEra::CapacityReclaim.label(), "capacity");
        assert_eq!(BidEra::CapacityReclaim.to_string(), "capacity");
    }
}
