//! Property-based tests of the availability machinery.

use proptest::prelude::*;
use quorum::{
    acceptance_availability, node_failure_pr, optimal_system, threshold_availability,
    AcceptanceSet, MajorityQuorum, QuorumSystem, ThresholdQuorum, WeightedMajority,
};

fn fps(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..=0.49, n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The threshold DP agrees with brute-force enumeration.
    #[test]
    fn dp_equals_enumeration(p in fps(7), k in 0usize..=7) {
        let dp = threshold_availability(&p, k);
        let brute = acceptance_availability(7, &p, |m| m.count_ones() as usize >= k);
        prop_assert!((dp - brute).abs() < 1e-10, "{dp} vs {brute}");
    }

    /// Availability is a probability and is monotone in node reliability.
    #[test]
    fn availability_is_monotone(mut p in fps(5), idx in 0usize..5, delta in 0.0f64..0.3) {
        let before = threshold_availability(&p, 3);
        prop_assert!((0.0..=1.0).contains(&before));
        p[idx] = (p[idx] + delta).min(1.0);
        let after = threshold_availability(&p, 3);
        prop_assert!(after <= before + 1e-12, "worse node improved availability");
    }

    /// Weighted-majority systems induce valid acceptance sets
    /// (Definition 1: intersecting and monotone).
    #[test]
    fn weighted_majority_is_valid_acceptance_set(
        weights in proptest::collection::vec(0u64..5, 3..7),
    ) {
        prop_assume!(weights.iter().sum::<u64>() > 0);
        let sys = WeightedMajority::new(weights);
        prop_assert!(sys.acceptance_set().is_valid());
    }

    /// Eq. 11 weights are the *continuously* optimal assignment; after
    /// integer quantization with a strict-majority tie rule they can lose
    /// a little to simple majority on mildly heterogeneous profiles
    /// (ties that real-valued weights would break fall out of the quorum)
    /// — the very reason the paper equalizes failure probabilities and
    /// keeps plain majority (§4.1). The property: never *much* worse than
    /// majority, and exactly majority on equal profiles.
    /// Restricted to the reliable regime the framework actually operates
    /// in (per-node FP ≤ 0.2): with near-half failure probabilities the
    /// quantization tie loss can grow past a few percent.
    #[test]
    fn weighted_voting_close_to_majority(
        p in proptest::collection::vec(1e-6f64..=0.2, 5..=5),
    ) {
        let weighted = optimal_system(&p).availability(&p);
        let majority = MajorityQuorum::new(5).availability(&p);
        prop_assert!(
            weighted >= majority - 0.02,
            "weighted {weighted} ≪ majority {majority} for {p:?}"
        );
    }

    /// On equal failure probabilities the weighted system IS majority.
    #[test]
    fn weighted_voting_equals_majority_when_equal(p in 1e-6f64..0.49) {
        let fps = vec![p; 5];
        let sys = optimal_system(&fps);
        let maj = MajorityQuorum::new(5);
        for mask in 0..(1u32 << 5) {
            prop_assert_eq!(sys.is_quorum(mask), maj.is_quorum(mask));
        }
    }

    /// In the monarchy regime (one node far more reliable than the rest),
    /// weighted voting strictly beats majority — the upside the paper
    /// forgoes for protocol compatibility.
    #[test]
    fn weighted_voting_wins_in_monarchy_regime(weak in 0.3f64..0.49) {
        let fps = vec![0.001, weak, weak, weak, weak];
        let weighted = optimal_system(&fps).availability(&fps);
        let majority = MajorityQuorum::new(5).availability(&fps);
        prop_assert!(
            weighted > majority,
            "weighted {weighted} ≤ majority {majority}"
        );
    }

    /// The inverse solver is tight: its answer meets the target and a
    /// slightly larger failure probability misses it.
    #[test]
    fn solver_is_tight(n in 3usize..=9, target in 0.9f64..0.999999) {
        let k = n / 2 + 1;
        let p = node_failure_pr(n, k, target).expect("reachable");
        let at = threshold_availability(&vec![p; n], k);
        prop_assert!(at >= target - 1e-9);
        if p < 0.999 {
            let above = threshold_availability(&vec![p + 1e-3; n], k);
            prop_assert!(above < target, "not tight at n={n}");
        }
    }

    /// RS-Paxos quorums always pairwise-intersect in at least m nodes.
    #[test]
    fn rs_quorums_intersect_in_m(n in 3usize..=9, m in 1usize..=4) {
        prop_assume!(m <= n);
        let q = ThresholdQuorum::rs_paxos(n, m);
        let k = q.threshold();
        // Worst case: two quorums overlapping as little as possible.
        prop_assert!(2 * k >= n + m, "2·{k} < {n} + {m}");
    }

    /// Acceptance-set availability equals the sum over minimal-quorum
    /// up-closure (Eq. 1 is representation-independent).
    #[test]
    fn availability_via_minimal_quorums(p in fps(5), k in 3usize..=5) {
        let a = AcceptanceSet::from_predicate(5, |m| m.count_ones() as usize >= k);
        let direct = a.availability(&p);
        let rebuilt = AcceptanceSet::from_quorums(5, &a.minimal_quorums());
        prop_assert!((rebuilt.availability(&p) - direct).abs() < 1e-12);
    }
}
