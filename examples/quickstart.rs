//! Quickstart: train the failure models on synthetic market history and
//! make one Jupiter bidding decision.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use spot_jupiter::jupiter::framework::MarketSnapshot;
use spot_jupiter::jupiter::{BiddingFramework, JupiterStrategy, ServiceSpec};
use spot_jupiter::spot_market::{InstanceType, Market, MarketConfig};

fn main() {
    // Two months of history across the paper's 17 availability zones.
    let market = Market::generate(MarketConfig::paper(2014, 60 * 24 * 60));
    let ty = InstanceType::M1Small;
    let spec = ServiceSpec::lock_service();
    println!(
        "service: {} ({} × {} on-demand, availability target {:.10})",
        spec.name,
        spec.baseline_nodes,
        ty.api_name(),
        spec.availability_target()
    );

    // One failure model per zone, trained from the full history.
    let mut fw = BiddingFramework::new(spec, JupiterStrategy::new());
    let now = market.horizon() - 1;
    let mut snapshots = Vec::new();
    for &zone in market.zones() {
        let trace = market.trace(zone, ty);
        fw.observe(zone, ty, trace);
        snapshots.push(MarketSnapshot {
            zone,
            instance_type: ty,
            spot_price: trace.price_at(now),
            sojourn_age: trace.sojourn_age_at(now) as u32,
        });
    }

    // Bid for the next 6-hour interval.
    let decision = fw.decide(&snapshots, 360);
    println!("\nJupiter picked {} zones:", decision.n());
    println!(
        "{:<18} {:>10} {:>10} {:>12}",
        "zone", "spot", "bid", "on-demand"
    );
    for pb in &decision.bids {
        let snap = snapshots
            .iter()
            .find(|s| s.zone == pb.zone)
            .expect("snapshot");
        println!(
            "{:<18} {:>10} {:>10} {:>12}",
            pb.zone.name(),
            snap.spot_price,
            pb.bid,
            ty.on_demand_price(pb.zone.region)
        );
    }
    let od5 = ty.on_demand_price(market.zones()[0].region) * 5;
    println!(
        "\ncost upper bound: ${:.4}/h  (5 on-demand nodes: ${:.4}/h)",
        decision.cost_upper_bound().as_dollars(),
        od5.as_dollars()
    );
}
