//! The discrete semi-Markov chain over spot prices and its empirical
//! estimator (Eq. 6/7/12/13).

use std::collections::HashMap;

use spot_market::{Price, PriceTrace};

/// Sojourn times are tracked exactly up to this many minutes; longer stays
/// are clamped into the final bucket (the paper's state space `T` is finite;
/// six hours comfortably covers the longest bidding interval evaluated).
pub const MAX_SOJOURN_MINUTES: usize = 360;

/// Per-price-state transition statistics.
#[derive(Clone, Debug, Default)]
struct StateStats {
    /// `N_i`: number of completed sojourns observed at this price.
    n_out: u64,
    /// `Σ_j N_{i,j}^k` indexed by `k−1` (sojourn of exactly `k` minutes).
    sojourn_counts: Vec<u64>,
    /// `N_{i,j}^k` keyed by `(k−1, j)`.
    trans: HashMap<(u32, u16), u64>,
    /// `N_{i,j}` marginal over sojourns, indexed by `j`.
    next_marginal: Vec<u64>,
    /// Total minutes spent at this price (including the censored final
    /// segment), for occupancy statistics.
    occupancy_minutes: u64,
}

/// The estimated stochastic kernel `Q(i, j, k)` of the price process for
/// one (zone, instance-type) market, built incrementally from price traces.
#[derive(Clone, Debug, Default)]
pub struct SemiMarkovKernel {
    /// Sorted unique prices; the state space `S`.
    prices: Vec<Price>,
    stats: Vec<StateStats>,
    /// Total completed transitions across all states.
    total_transitions: u64,
}

impl SemiMarkovKernel {
    /// An empty kernel (no states, no data).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a kernel from a single trace.
    pub fn from_trace(trace: &PriceTrace) -> Self {
        let mut k = Self::new();
        k.observe_trace(trace);
        k
    }

    /// The state index for `price`, inserting a new state if unseen.
    fn intern(&mut self, price: Price) -> u16 {
        match self.prices.binary_search(&price) {
            Ok(i) => i as u16,
            Err(i) => {
                self.prices.insert(i, price);
                self.stats.insert(i, StateStats::default());
                // Re-index `j` references in every state's tables: all
                // indices ≥ i shift up by one.
                for s in &mut self.stats {
                    if s.next_marginal.len() >= i {
                        s.next_marginal.insert(i, 0);
                    }
                    if !s.trans.is_empty() {
                        let shifted: HashMap<(u32, u16), u64> = s
                            .trans
                            .drain()
                            .map(|((k, j), c)| {
                                let nj = if (j as usize) >= i { j + 1 } else { j };
                                ((k, nj), c)
                            })
                            .collect();
                        s.trans = shifted;
                    }
                }
                i as u16
            }
        }
    }

    /// Fold the transitions of `trace` into the kernel (Eq. 13 counts).
    ///
    /// Every *completed* sojourn contributes one `(i → j, k)` observation;
    /// the final segment of the trace is right-censored (its true sojourn
    /// is unknown) and only contributes occupancy time.
    pub fn observe_trace(&mut self, trace: &PriceTrace) {
        let segments: Vec<_> = trace.segments().collect();
        for (idx, seg) in segments.iter().enumerate() {
            let i = self.intern(seg.price);
            self.stats[i as usize].occupancy_minutes += seg.duration;
            let Some(next) = segments.get(idx + 1) else {
                continue; // censored final segment
            };
            let j = self.intern(next.price);
            let k = (seg.duration as usize).clamp(1, MAX_SOJOURN_MINUTES) as u32;
            let n_states = self.prices.len();
            let st = &mut self.stats[i as usize];
            if st.sojourn_counts.len() < k as usize {
                st.sojourn_counts.resize(k as usize, 0);
            }
            st.sojourn_counts[(k - 1) as usize] += 1;
            *st.trans.entry((k - 1, j)).or_insert(0) += 1;
            if st.next_marginal.len() < n_states {
                st.next_marginal.resize(n_states, 0);
            }
            st.next_marginal[j as usize] += 1;
            st.n_out += 1;
            self.total_transitions += 1;
        }
    }

    /// The state space `S` (sorted unique prices).
    pub fn prices(&self) -> &[Price] {
        &self.prices
    }

    /// Number of price states.
    pub fn n_states(&self) -> usize {
        self.prices.len()
    }

    /// Total completed transitions observed (training-data volume).
    pub fn total_transitions(&self) -> u64 {
        self.total_transitions
    }

    /// The state index whose price is nearest to `price` (`None` on an
    /// empty kernel). Used to map a live market price onto the trained
    /// state space.
    pub fn nearest_state(&self, price: Price) -> Option<u16> {
        if self.prices.is_empty() {
            return None;
        }
        let i = self.prices.partition_point(|&p| p < price);
        let candidates = [i.checked_sub(1), (i < self.prices.len()).then_some(i)];
        candidates
            .into_iter()
            .flatten()
            .min_by_key(|&c| {
                let d = self.prices[c].as_micros().abs_diff(price.as_micros());
                (d, c)
            })
            .map(|c| c as u16)
    }

    /// `q̂_{i,j,k} = N_{i,j}^k / N_i` (Eq. 13); zero when `N_i = 0`.
    pub fn q(&self, i: u16, j: u16, k_minutes: u32) -> f64 {
        let st = &self.stats[i as usize];
        if st.n_out == 0 || k_minutes == 0 {
            return 0.0;
        }
        let k = (k_minutes as usize).min(MAX_SOJOURN_MINUTES) as u32;
        let count = st.trans.get(&(k - 1, j)).copied().unwrap_or(0);
        count as f64 / st.n_out as f64
    }

    /// Pseudo-count weight pulling sparse empirical hazards toward the
    /// state's geometric hazard. Pure MLE (the paper's Eq. 13) is
    /// overconfident in the tail: a single observed 300-minute sojourn
    /// would make the chain *certain* the price holds for 300 minutes,
    /// collapsing the forecast risk to zero exactly where it matters.
    const HAZARD_SMOOTHING: f64 = 3.0;

    /// The discrete hazard at age `a` minutes: `P(τ = a | τ ≥ a)` for
    /// state `i`, smoothed toward the geometric hazard `1/mean sojourn`
    /// with `HAZARD_SMOOTHING` pseudo-observations so sparse tails
    /// degrade gracefully instead of reading as certainties.
    pub fn hazard(&self, i: u16, age: u32) -> f64 {
        let st = &self.stats[i as usize];
        if st.n_out == 0 {
            return self.global_fallback_hazard();
        }
        let age = age.max(1) as usize;
        let at: u64 = st.sojourn_counts.get(age - 1).copied().unwrap_or(0);
        let at_or_later: u64 = st.sojourn_counts.iter().skip(age - 1).sum();
        let p_geo = (1.0 / self.mean_sojourn(i).max(1.0)).clamp(0.0, 1.0);
        let alpha = Self::HAZARD_SMOOTHING;
        ((at as f64 + alpha * p_geo) / (at_or_later as f64 + alpha)).clamp(0.0, 1.0)
    }

    /// All hazards `P(τ = a | τ ≥ a)` for ages `1..=max_age` of state `i`
    /// in one pass (suffix sums computed once; the per-age [`Self::hazard`]
    /// recomputes them and is O(max sojourn) per call — this batch form is
    /// what forecast-table construction uses).
    pub fn hazards_up_to(&self, i: u16, max_age: usize) -> Vec<f64> {
        let st = &self.stats[i as usize];
        if st.n_out == 0 {
            return vec![self.global_fallback_hazard(); max_age];
        }
        let p_geo = (1.0 / self.mean_sojourn(i).max(1.0)).clamp(0.0, 1.0);
        let alpha = Self::HAZARD_SMOOTHING;
        // suffix[a-1] = Σ_{k ≥ a} N(τ = k).
        let len = st.sojourn_counts.len();
        let mut suffix = vec![0u64; len + 1];
        for k in (0..len).rev() {
            suffix[k] = suffix[k + 1] + st.sojourn_counts[k];
        }
        (1..=max_age)
            .map(|age| {
                let at = st.sojourn_counts.get(age - 1).copied().unwrap_or(0);
                let at_or_later = suffix.get(age - 1).copied().unwrap_or(0);
                ((at as f64 + alpha * p_geo) / (at_or_later as f64 + alpha)).clamp(0.0, 1.0)
            })
            .collect()
    }

    /// Mean completed sojourn of state `i` in minutes (fallbacks to the
    /// global mean when unobserved).
    pub fn mean_sojourn(&self, i: u16) -> f64 {
        let st = &self.stats[i as usize];
        if st.n_out == 0 {
            return 1.0 / self.global_fallback_hazard();
        }
        let total: u64 = st
            .sojourn_counts
            .iter()
            .enumerate()
            .map(|(k, &c)| (k as u64 + 1) * c)
            .sum();
        total as f64 / st.n_out as f64
    }

    fn global_fallback_hazard(&self) -> f64 {
        let (total_minutes, total_out) = self.stats.iter().fold((0u64, 0u64), |(m, o), s| {
            let mins: u64 = s
                .sojourn_counts
                .iter()
                .enumerate()
                .map(|(k, &c)| (k as u64 + 1) * c)
                .sum();
            (m + mins, o + s.n_out)
        });
        if total_out == 0 {
            0.1 // no data at all: assume ~10-minute sojourns
        } else {
            (total_out as f64 / total_minutes as f64).clamp(1e-6, 1.0)
        }
    }

    /// Next-state distribution conditioned on leaving `i` after exactly
    /// `age` minutes: `P(j | i, τ = age)` — `Some` only when that exact
    /// sojourn has ≥ 3 observations (one data point says little about
    /// where the price goes after a particular dwell time).
    pub fn exact_next_state_dist(&self, i: u16, age: u32) -> Option<Vec<f64>> {
        let n = self.n_states();
        assert!(n > 0, "empty kernel");
        let st = &self.stats[i as usize];
        let age = (age.max(1) as usize).min(MAX_SOJOURN_MINUTES) as u32;
        // Count before allocating: most (state, age) cells have no
        // exact-sojourn support and this runs for every cell of every
        // forecast table.
        let total: u64 = (0..n as u16)
            .map(|j| st.trans.get(&(age - 1, j)).copied().unwrap_or(0))
            .sum();
        (total >= 3).then(|| {
            (0..n as u16)
                .map(|j| st.trans.get(&(age - 1, j)).copied().unwrap_or(0) as f64 / total as f64)
                .collect()
        })
    }

    /// Marginal next-state distribution `P(j | i)`, falling back to
    /// "uniform over adjacent states" when `i` was never seen completing a
    /// sojourn. Always sums to 1 for a non-empty state space.
    pub fn marginal_next_state_dist(&self, i: u16) -> Vec<f64> {
        let n = self.n_states();
        assert!(n > 0, "empty kernel");
        let st = &self.stats[i as usize];
        let total: u64 = st.next_marginal.iter().sum();
        if total > 0 {
            let mut out = vec![0.0; n];
            for (j, &c) in st.next_marginal.iter().enumerate() {
                out[j] = c as f64 / total as f64;
            }
            return out;
        }
        // No data: uniform over neighbours (or self if singleton).
        let mut out = vec![0.0; n];
        let i = i as usize;
        let mut neighbours = Vec::new();
        if i > 0 {
            neighbours.push(i - 1);
        }
        if i + 1 < n {
            neighbours.push(i + 1);
        }
        if neighbours.is_empty() {
            out[i] = 1.0;
        } else {
            for &j in &neighbours {
                out[j] = 1.0 / neighbours.len() as f64;
            }
        }
        out
    }

    /// Next-state distribution at `(i, age)`: the exact-sojourn
    /// conditional when well supported, otherwise the marginal.
    pub fn next_state_dist(&self, i: u16, age: u32) -> Vec<f64> {
        self.exact_next_state_dist(i, age)
            .unwrap_or_else(|| self.marginal_next_state_dist(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spot_market::PricePoint;

    fn p(d: f64) -> Price {
        Price::from_dollars(d)
    }

    /// A trace alternating A(5 min) → B(3 min) → A(5) → B(3) …
    fn alternating(cycles: usize) -> PriceTrace {
        let mut points = Vec::new();
        let mut t = 0;
        for _ in 0..cycles {
            points.push(PricePoint {
                minute: t,
                price: p(0.01),
            });
            t += 5;
            points.push(PricePoint {
                minute: t,
                price: p(0.02),
            });
            t += 3;
        }
        PriceTrace::new(points, t)
    }

    #[test]
    fn estimates_simple_kernel() {
        let k = SemiMarkovKernel::from_trace(&alternating(10));
        assert_eq!(k.n_states(), 2);
        let a = k.nearest_state(p(0.01)).unwrap();
        let b = k.nearest_state(p(0.02)).unwrap();
        // Every A sojourn lasts exactly 5 minutes and goes to B.
        assert!((k.q(a, b, 5) - 1.0).abs() < 1e-12);
        assert_eq!(k.q(a, b, 4), 0.0);
        assert_eq!(k.q(a, a, 5), 0.0);
        // B sojourns: 9 completed (the last is censored), all 3 min → A.
        assert!((k.q(b, a, 3) - 1.0).abs() < 1e-12);
        assert_eq!(k.total_transitions(), 19);
    }

    #[test]
    fn kernel_rows_sum_to_at_most_one() {
        let k = SemiMarkovKernel::from_trace(&alternating(7));
        for i in 0..k.n_states() as u16 {
            let mut row = 0.0;
            for j in 0..k.n_states() as u16 {
                for kk in 1..=10u32 {
                    row += k.q(i, j, kk);
                }
            }
            assert!(row <= 1.0 + 1e-9, "row {i} sums to {row}");
        }
    }

    #[test]
    fn deterministic_sojourn_hazard() {
        let k = SemiMarkovKernel::from_trace(&alternating(10));
        let a = k.nearest_state(p(0.01)).unwrap();
        // All 10 completed sojourns at A last 5 minutes. With smoothing
        // (α = 3 pseudo-observations at the geometric hazard 1/5), the
        // hazard is small-but-positive before minute 5 and large at 5.
        let early = k.hazard(a, 1);
        let at_end = k.hazard(a, 5);
        assert!(early > 0.0 && early < 0.1, "early hazard {early}");
        assert!(at_end > 0.7, "end-of-sojourn hazard {at_end}");
        assert!(at_end > 5.0 * early);
        assert!((k.mean_sojourn(a) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn batched_hazards_equal_per_age_hazards() {
        let k = SemiMarkovKernel::from_trace(&alternating(10));
        for i in 0..k.n_states() as u16 {
            let batch = k.hazards_up_to(i, 20);
            for age in 1..=20u32 {
                let single = k.hazard(i, age);
                assert!(
                    (batch[(age - 1) as usize] - single).abs() < 1e-15,
                    "state {i} age {age}"
                );
            }
        }
    }

    #[test]
    fn hazard_beyond_support_falls_back_to_geometric() {
        let k = SemiMarkovKernel::from_trace(&alternating(10));
        let a = k.nearest_state(p(0.01)).unwrap();
        let h = k.hazard(a, 50);
        assert!((h - 1.0 / 5.0).abs() < 1e-12, "got {h}");
    }

    #[test]
    fn next_state_dist_sums_to_one_and_backs_off() {
        let k = SemiMarkovKernel::from_trace(&alternating(10));
        let a = k.nearest_state(p(0.01)).unwrap();
        // Exact support at τ=5.
        let d = k.next_state_dist(a, 5);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((d[1] - 1.0).abs() < 1e-12);
        // Unseen sojourn (τ=2) backs off to the marginal, still → B.
        let d = k.next_state_dist(a, 2);
        assert!((d[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_state_mapping() {
        let k = SemiMarkovKernel::from_trace(&alternating(3));
        assert_eq!(k.prices(), &[p(0.01), p(0.02)]);
        assert_eq!(k.nearest_state(p(0.005)).unwrap(), 0);
        assert_eq!(k.nearest_state(p(0.014)).unwrap(), 0);
        assert_eq!(k.nearest_state(p(0.016)).unwrap(), 1);
        assert_eq!(k.nearest_state(p(0.5)).unwrap(), 1);
        assert_eq!(SemiMarkovKernel::new().nearest_state(p(0.01)), None);
    }

    #[test]
    fn incremental_observation_equals_batch() {
        let t = alternating(10);
        let batch = SemiMarkovKernel::from_trace(&t);
        let mut inc = SemiMarkovKernel::new();
        // Observing windows [0,40) and [40,80) misses only the boundary
        // transition statistics; totals must line up within that.
        inc.observe_trace(&t.window(0, 40));
        inc.observe_trace(&t.window(40, 80));
        assert_eq!(inc.n_states(), batch.n_states());
        // One cross-boundary transition is lost to censoring.
        assert_eq!(inc.total_transitions() + 1, batch.total_transitions());
    }

    #[test]
    fn intern_preserves_existing_indices() {
        // Insert a price *below* existing states and check old statistics
        // still point at the right prices.
        let mut k = SemiMarkovKernel::from_trace(&alternating(5));
        let t2 = PriceTrace::new(
            vec![
                PricePoint {
                    minute: 0,
                    price: p(0.005),
                },
                PricePoint {
                    minute: 4,
                    price: p(0.02),
                },
                PricePoint {
                    minute: 8,
                    price: p(0.005),
                },
            ],
            12,
        );
        k.observe_trace(&t2);
        assert_eq!(k.prices(), &[p(0.005), p(0.01), p(0.02)]);
        let a = 1u16; // 0.01 shifted up by the new state
        let b = 2u16;
        assert!((k.q(a, b, 5) - 1.0).abs() < 1e-12, "A→B stats survived");
        let low = 0u16;
        assert!(k.q(low, b, 4) > 0.0, "new state's transition recorded");
    }

    #[test]
    fn unknown_state_distributions_are_sane() {
        // A kernel with occupancy but no completed transitions.
        let t = PriceTrace::new(
            vec![PricePoint {
                minute: 0,
                price: p(0.01),
            }],
            100,
        );
        let k = SemiMarkovKernel::from_trace(&t);
        assert_eq!(k.n_states(), 1);
        let d = k.next_state_dist(0, 5);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(k.hazard(0, 5) > 0.0, "fallback hazard must be positive");
    }
}
