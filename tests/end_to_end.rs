//! Cross-crate integration tests: the full pipeline from synthetic market
//! through failure model, bidding, replay accounting and the live
//! services.

use spot_jupiter::jupiter::framework::MarketSnapshot;
use spot_jupiter::jupiter::{BiddingFramework, ExtraStrategy, JupiterStrategy, ServiceSpec};
use spot_jupiter::replay::experiments::{self, Scale};
use spot_jupiter::replay::lifecycle::{on_demand_baseline_cost, replay_strategy};
use spot_jupiter::replay::ReplayConfig;
use spot_jupiter::spot_market::{InstanceType, Termination};
use test_util::quick_market;

#[test]
fn jupiter_beats_heuristics_on_the_paper_metric() {
    // The paper's central comparison at smoke scale: Jupiter must keep
    // near-baseline availability at a fraction of the baseline cost, and
    // dominate Extra(2,0.2) on availability.
    let market = quick_market(77, 3, 10);
    let spec = ServiceSpec::lock_service();
    let train = 2 * 7 * 24 * 60;
    let config = ReplayConfig::new(train, 3 * 7 * 24 * 60, 6);

    let jupiter = replay_strategy(&market, &spec, JupiterStrategy::new(), config);
    let extra0 = replay_strategy(&market, &spec, ExtraStrategy::new(0, 0.2), config);
    let extra2 = replay_strategy(&market, &spec, ExtraStrategy::new(2, 0.2), config);
    let baseline = on_demand_baseline_cost(&market, &spec, config);

    assert!(
        jupiter.availability() >= 0.9999,
        "Jupiter availability {}",
        jupiter.availability()
    );
    assert!(
        jupiter.total_cost.as_dollars() < 0.5 * baseline.as_dollars(),
        "Jupiter {} vs baseline {}",
        jupiter.total_cost,
        baseline
    );
    assert!(
        jupiter.availability() > extra0.availability(),
        "Jupiter must beat Extra(0,0.2) on availability"
    );
    assert!(
        jupiter.availability() > extra2.availability(),
        "Jupiter must beat Extra(2,0.2) on availability"
    );
    assert!(
        extra2.availability() > extra0.availability(),
        "two spare instances must help availability"
    );
    assert!(
        extra2.total_cost > extra0.total_cost,
        "two spare instances must cost more"
    );
}

#[test]
fn storage_and_lock_specs_diverge_as_in_the_paper() {
    // θ(3,5) tolerates one failure, majority five tolerates two — so at
    // identical markets the storage service needs more reliable bids.
    let lock = ServiceSpec::lock_service();
    let store = ServiceSpec::storage_service();
    let lock_target = lock.node_fp_target(5).expect("feasible");
    let store_target = store.node_fp_target(5).expect("feasible");
    assert!(
        store_target < lock_target,
        "storage per-node FP target {store_target} must be stricter than lock {lock_target}"
    );
}

#[test]
fn billing_invariants_hold_across_a_replay() {
    let market = quick_market(11, 2, 8);
    let spec = ServiceSpec::lock_service();
    let config = ReplayConfig::new(7 * 24 * 60, 2 * 7 * 24 * 60, 3);
    let r = replay_strategy(&market, &spec, ExtraStrategy::new(0, 0.1), config);
    for rec in &r.instances {
        // Out-of-bid kills end at a minute where the price exceeds the bid.
        if rec.termination == Termination::Provider {
            let price = market.price(rec.zone, InstanceType::M1Small, rec.ended_at);
            assert!(
                price > rec.bid,
                "{}: kill without price excursion",
                rec.zone.name()
            );
        }
        // Nobody is billed more than bid × started-hours (bids cap the
        // hourly charge under EC2 rules only in expectation — but never
        // above the trace max within the lifetime).
        if rec.ended_at > rec.granted_at {
            let max_price = market
                .trace(rec.zone, InstanceType::M1Small)
                .max_price_in(rec.granted_at, rec.ended_at);
            let hours = (rec.ended_at - rec.granted_at).div_ceil(60);
            assert!(rec.cost <= max_price * hours, "{:?}", rec);
        }
    }
}

#[test]
fn experiments_are_deterministic() {
    let a = experiments::fig4(&Scale::quick(5));
    let b = experiments::fig4(&Scale::quick(5));
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.bid, y.bid);
        assert_eq!(x.measured, y.measured);
    }
}

#[test]
fn decision_respects_all_constraints() {
    // Every bid Jupiter emits is ≥ the current spot price (constraint 9
    // implies instances actually start) and < the zone's on-demand price
    // (§4.2's cap), and the implied equal-FP availability meets the
    // target.
    let market = quick_market(31, 4, 12);
    let ty = InstanceType::M1Small;
    let spec = ServiceSpec::lock_service();
    let mut fw = BiddingFramework::new(spec.clone(), JupiterStrategy::new());
    let now = market.horizon() - 1;
    let mut snapshots = Vec::new();
    for &zone in market.zones() {
        let t = market.trace(zone, ty);
        fw.observe(zone, ty, t);
        snapshots.push(MarketSnapshot {
            zone,
            instance_type: ty,
            spot_price: t.price_at(now),
            sojourn_age: t.sojourn_age_at(now) as u32,
        });
    }
    let decision = fw.decide(&snapshots, 360);
    assert!(decision.n() > 0, "feasible at this scale");
    for pb in &decision.bids {
        let (zone, bid) = (pb.zone, pb.bid);
        let snap = snapshots
            .iter()
            .find(|s| s.zone == zone)
            .expect("snapshot");
        assert!(bid >= snap.spot_price, "{}: bid below spot", zone.name());
        assert!(
            bid < ty.on_demand_price(zone.region),
            "{}: bid at or above on-demand",
            zone.name()
        );
        // And the model agrees the bid meets the per-node target.
        let target = spec.node_fp_target(decision.n()).expect("target");
        let fp = fw.model(zone, pb.instance_type).expect("trained").estimate_fp(
            bid,
            snap.spot_price,
            snap.sojourn_age,
            360,
        );
        assert!(
            fp <= target + 1e-9,
            "{}: fp {fp} > target {target}",
            zone.name()
        );
    }
}

#[test]
fn sweep_has_all_series() {
    let rows = experiments::lock_sweep(&Scale::quick(3));
    let strategies: std::collections::HashSet<&str> =
        rows.iter().map(|r| r.strategy.as_str()).collect();
    assert!(strategies.contains("Jupiter"));
    assert!(strategies.contains("Extra(0,0.2)"));
    assert!(strategies.contains("Extra(2,0.2)"));
    assert!(strategies.contains("Baseline"));
    // One row per (interval, strategy) + the baseline.
    assert_eq!(rows.len(), 3 + 1);
}
