//! The erasure-coded storage service (§5.1.2): an RS-Paxos θ(3,5) cluster
//! storing coded shards, surviving a replica kill and reconstructing
//! reads after leader failover.
//!
//! ```text
//! cargo run --release --example storage_service
//! ```

use bytes::Bytes;
use spot_jupiter::simnet::{NetworkConfig, SimTime};
use spot_jupiter::storage::{RsCluster, RsConfig, StoreCmd, StoreResp};

fn main() {
    let mut cluster = RsCluster::new(5, RsConfig::default(), NetworkConfig::default(), 11);
    let client = cluster.add_client();
    println!("θ(3,5) RS-Paxos storage: quorum {}, tolerates 1 failure", 4);

    // Write a set of objects.
    let objects: Vec<(String, Bytes)> = (0..8)
        .map(|i| {
            let key = format!("object-{i}");
            let body = Bytes::from(vec![i as u8 ^ 0x5A; 1_200 + i * 97]);
            (key, body)
        })
        .collect();
    for (key, body) in &objects {
        cluster.submit(
            client,
            StoreCmd::Put {
                key: key.clone(),
                object: body.clone(),
            },
        );
        assert!(cluster.run_until_drained(client, deadline(&cluster)));
    }
    println!("stored {} objects", objects.len());

    // Shard accounting: each replica holds ~1/3 of each object.
    let total_object_bytes: usize = objects.iter().map(|(_, b)| b.len()).sum();
    let mut total_shard_bytes = 0usize;
    for &s in cluster.servers() {
        let held = cluster
            .replica(s)
            .map(|r| r.store().shard_bytes())
            .unwrap_or(0);
        total_shard_bytes += held;
        println!("  node {s}: {held} shard bytes");
    }
    println!(
        "coded footprint: {total_shard_bytes} B for {total_object_bytes} B of data \
         ({:.2}× vs 5× for replication)",
        total_shard_bytes as f64 / total_object_bytes as f64
    );

    // Kill the leader — the only node caching full objects — and read
    // everything back through shard reconstruction.
    let leader = cluster.leader().expect("leader elected");
    println!("\ncrashing leader {leader} (out-of-bid)…");
    cluster.crash(leader);

    let mut ok = 0;
    for (key, body) in &objects {
        cluster.submit(client, StoreCmd::Get { key: key.clone() });
        assert!(cluster.run_until_drained(client, deadline(&cluster)));
        match cluster.last_response(client) {
            Some(StoreResp::Value { object: Some(got) }) if got == *body => ok += 1,
            other => println!("  {key}: unexpected {other:?}"),
        }
    }
    println!(
        "reconstructed {ok}/{} objects from 3-of-5 shards after failover",
        objects.len()
    );
}

fn deadline(cluster: &RsCluster) -> SimTime {
    cluster.sim.now() + SimTime::from_secs(120)
}
