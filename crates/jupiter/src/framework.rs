//! The bidding framework (Fig. 2): failure models per availability zone,
//! online training, and the bidding loop entry point.

use std::collections::HashMap;
use std::sync::Arc;

use obs::Obs;
use rayon::prelude::*;
use spot_market::{InstanceType, Price, PriceTrace, Zone};
use spot_model::{FailureModel, FailureModelConfig, FrozenKernel};

use crate::service::ServiceSpec;
use crate::strategy::{BidDecision, BiddingStrategy, ZoneState};

/// A live market observation for one (zone, instance-type) pool, fed to
/// [`BiddingFramework::decide`].
#[derive(Clone, Copy, Debug)]
pub struct MarketSnapshot {
    /// The zone.
    pub zone: Zone,
    /// The instance-type pool within the zone.
    pub instance_type: InstanceType,
    /// Current spot price.
    pub spot_price: Price,
    /// Minutes at the current price.
    pub sojourn_age: u32,
}

/// The availability- and cost-aware bidding framework of Fig. 2: the spot
/// instance failure model (one per zone×type pool) feeding the online
/// bidding module.
pub struct BiddingFramework<S: BiddingStrategy> {
    spec: ServiceSpec,
    strategy: S,
    models: HashMap<(Zone, InstanceType), FailureModel>,
    model_config: FailureModelConfig,
    obs: Obs,
}

impl<S: BiddingStrategy> BiddingFramework<S> {
    /// A framework for `spec` driven by `strategy`.
    pub fn new(spec: ServiceSpec, strategy: S) -> Self {
        let model_config = FailureModelConfig {
            fp0: spec.fp0,
            ..FailureModelConfig::default()
        };
        BiddingFramework {
            spec,
            strategy,
            models: HashMap::new(),
            model_config,
            obs: Obs::disabled(),
        }
    }

    /// Record framework metrics (`jupiter.kernel_fit_micros`,
    /// `jupiter.zones_trained`, `jupiter.untrained_zones_skipped`) into
    /// `obs`.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The service spec.
    pub fn spec(&self) -> &ServiceSpec {
        &self.spec
    }

    /// The strategy's display name.
    pub fn strategy_name(&self) -> String {
        self.strategy.name()
    }

    /// Re-target the minimum capacity-weighted fleet strength the next
    /// decision must reach (the auto-scaler's control input). `0` disables
    /// the constraint.
    pub fn set_min_strength(&mut self, strength: u32) {
        self.spec.min_strength = strength;
    }

    /// Adopt a pre-trained shared kernel for the `(zone, ty)` pool (the
    /// [`crate::ModelStore`] consumption path): the framework wraps it in
    /// a [`FailureModel`] carrying this service's `FP⁰` composition, and
    /// later [`Self::observe`] calls fork it copy-on-write — the shared
    /// base stays untouched.
    pub fn install_kernel(&mut self, zone: Zone, ty: InstanceType, kernel: Arc<FrozenKernel>) {
        self.models.insert(
            (zone, ty),
            FailureModel::from_kernel(kernel, self.model_config),
        );
    }

    /// Feed spot-price history for a pool into its failure model
    /// (training and continuous online refinement both go through here).
    pub fn observe(&mut self, zone: Zone, ty: InstanceType, trace: &PriceTrace) {
        let fit_micros = self.obs.histogram("jupiter.kernel_fit_micros");
        let model = self
            .models
            .entry((zone, ty))
            .or_insert_with(|| FailureModel::new(self.model_config));
        fit_micros.time(|| model.observe(trace));
    }

    /// Train all pools from a common history source in parallel.
    pub fn train_all<'a, I>(&mut self, histories: I)
    where
        I: IntoIterator<Item = (Zone, InstanceType, &'a PriceTrace)>,
    {
        let cfg = self.model_config;
        let fit_micros = self.obs.histogram("jupiter.kernel_fit_micros");
        let zones_trained = self.obs.counter("jupiter.zones_trained");
        let items: Vec<(Zone, InstanceType, &PriceTrace)> = histories.into_iter().collect();
        let trained: Vec<(Zone, InstanceType, FailureModel)> = items
            .into_par_iter()
            .map(|(zone, ty, trace)| {
                let model = fit_micros.time(|| FailureModel::from_trace(trace, cfg));
                (zone, ty, model)
            })
            .collect();
        zones_trained.add(trained.len() as u64);
        for (zone, ty, model) in trained {
            // Merge with any existing model by re-inserting (fresh batch
            // training replaces; use `observe` for incremental updates).
            self.models.insert((zone, ty), model);
        }
    }

    /// The trained model for the `(zone, ty)` pool, if any.
    pub fn model(&self, zone: Zone, ty: InstanceType) -> Option<&FailureModel> {
        self.models.get(&(zone, ty))
    }

    /// The model-predicted failure probability for bidding `bid` in the
    /// snapshot's zone over the next `horizon_minutes` — the quantity a
    /// decision audit record captures as `1 − predicted_availability`.
    /// `None` when the zone has no trained model.
    pub fn predicted_fp(
        &self,
        snapshot: &MarketSnapshot,
        bid: Price,
        horizon_minutes: u32,
    ) -> Option<f64> {
        self.models
            .get(&(snapshot.zone, snapshot.instance_type))
            .map(|model| {
                model.estimate_fp(bid, snapshot.spot_price, snapshot.sojourn_age, horizon_minutes)
            })
    }

    /// Make the bidding decision for the next interval (Fig. 2's online
    /// bidding step). Pools without a trained model are skipped.
    pub fn decide(&self, snapshots: &[MarketSnapshot], horizon_minutes: u32) -> BidDecision {
        let states: Vec<ZoneState<'_>> = snapshots
            .iter()
            .filter_map(|s| {
                self.models.get(&(s.zone, s.instance_type)).map(|model| ZoneState {
                    zone: s.zone,
                    instance_type: s.instance_type,
                    spot_price: s.spot_price,
                    sojourn_age: s.sojourn_age,
                    on_demand: s.instance_type.on_demand_price(s.zone.region),
                    model,
                })
            })
            .collect();
        self.obs
            .counter("jupiter.untrained_zones_skipped")
            .add((snapshots.len() - states.len()) as u64);
        self.strategy.decide(&states, &self.spec, horizon_minutes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::JupiterStrategy;
    use spot_market::{GenParams, TraceGenerator};

    #[test]
    fn end_to_end_on_synthetic_market() {
        // Train on 4 weeks of generated history for 8 zones, then decide.
        let gen = TraceGenerator::with_params(77, GenParams::default());
        let zones: Vec<Zone> = spot_market::topology::experiment_zones()
            .into_iter()
            .take(8)
            .collect();
        let ty = InstanceType::M1Small;
        let horizon = 4 * 7 * 24 * 60;
        let traces: Vec<(Zone, PriceTrace)> = zones
            .iter()
            .map(|&z| (z, gen.generate(z, ty, horizon)))
            .collect();

        let mut fw = BiddingFramework::new(ServiceSpec::lock_service(), JupiterStrategy::new());
        fw.train_all(traces.iter().map(|(z, t)| (*z, ty, t)));

        let snapshots: Vec<MarketSnapshot> = traces
            .iter()
            .map(|(z, t)| MarketSnapshot {
                zone: *z,
                instance_type: ty,
                spot_price: t.price_at(horizon - 1),
                sojourn_age: 3,
            })
            .collect();
        let d = fw.decide(&snapshots, 360);
        assert!(
            d.n() >= 5,
            "synthetic market should be biddable: n={}",
            d.n()
        );
        // Bids never reach the on-demand price.
        for b in &d.bids {
            assert!(b.bid < ty.on_demand_price(b.zone.region));
        }
        // And the upper bound is far below on-demand cost for 5 nodes.
        let od5 = ty.on_demand_price(zones[0].region) * 5;
        assert!(
            d.cost_upper_bound() < od5,
            "{} vs {}",
            d.cost_upper_bound(),
            od5
        );
    }

    #[test]
    fn untrained_zones_are_not_bid() {
        let fw = BiddingFramework::new(ServiceSpec::lock_service(), JupiterStrategy::new());
        let snap = MarketSnapshot {
            zone: spot_market::topology::all_zones()[0],
            instance_type: InstanceType::M1Small,
            spot_price: Price::from_dollars(0.008),
            sojourn_age: 0,
        };
        let d = fw.decide(&[snap], 60);
        assert_eq!(d.n(), 0);
    }

    #[test]
    fn incremental_observation_trains() {
        let gen = TraceGenerator::new(5);
        let zone = spot_market::topology::all_zones()[0];
        let ty = InstanceType::M1Small;
        let trace = gen.generate(zone, ty, 7 * 24 * 60);
        let mut fw = BiddingFramework::new(ServiceSpec::lock_service(), JupiterStrategy::new());
        assert!(fw.model(zone, ty).is_none());
        fw.observe(zone, ty, &trace.window(0, 5_000));
        fw.observe(zone, ty, &trace.window(5_000, 10_000));
        let m = fw.model(zone, ty).unwrap();
        assert!(m.is_trained());
        assert!(m.kernel().total_transitions() > 0);
    }
}
