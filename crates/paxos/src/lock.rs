//! A Chubby-like advisory lock service as a replicated state machine
//! (§5.1.1).
//!
//! The service keeps a map from lock names to holders. Clients acquire and
//! release advisory locks; the safety property the paper highlights — a
//! lock can never be held by two clients at once — follows from the state
//! machine's determinism plus Paxos' agreement on the command order.

use std::collections::BTreeMap;

use simnet::NodeId;

use crate::replica::StateMachine;

/// Lock-service commands.
///
/// Leased variants carry the client's timestamp (`now_ms`): every replica
/// applies the same command with the same embedded time, so lease expiry
/// stays deterministic across the group — the Chubby approach of
/// evaluating time inside the replicated operation stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LockCmd {
    /// Try to acquire `name` on behalf of `owner` (no expiry).
    Acquire {
        /// Lock name.
        name: String,
        /// Requesting client.
        owner: NodeId,
    },
    /// Acquire with a lease: the lock self-releases `ttl_ms` after
    /// `now_ms` unless renewed (Chubby-style session lease).
    AcquireLease {
        /// Lock name.
        name: String,
        /// Requesting client.
        owner: NodeId,
        /// Client timestamp (ms) embedded for deterministic expiry.
        now_ms: u64,
        /// Lease duration in ms.
        ttl_ms: u64,
    },
    /// Extend a held lease by its original TTL from `now_ms`.
    Renew {
        /// Lock name.
        name: String,
        /// Renewing client.
        owner: NodeId,
        /// Client timestamp (ms).
        now_ms: u64,
    },
    /// Release `name` if held by `owner`.
    Release {
        /// Lock name.
        name: String,
        /// Releasing client.
        owner: NodeId,
    },
    /// Query the holder of `name` (read-only; still serialized through
    /// the log, like Chubby's linearizable reads). `now_ms` makes expired
    /// leases read as free.
    Holder {
        /// Lock name.
        name: String,
    },
}

/// Lock-service responses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LockResp {
    /// The lock was acquired (or already held by the requester).
    Granted,
    /// The lock is held by someone else.
    Busy {
        /// The current holder.
        holder: NodeId,
    },
    /// The lock was released.
    Released,
    /// Release failed: not held by the requester.
    NotHeld,
    /// Holder query result.
    HolderIs(Option<NodeId>),
    /// The lease was extended to the embedded expiry (ms).
    Renewed {
        /// New expiry timestamp in ms.
        until_ms: u64,
    },
}

/// One held lock: the owner plus an optional lease.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Holding {
    owner: NodeId,
    /// `Some((expires_at_ms, ttl_ms))` for leased locks.
    lease: Option<(u64, u64)>,
}

/// The lock table. The latest command timestamp seen drives lazy lease
/// expiry (time only moves through the replicated command stream, so the
/// table stays deterministic).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LockService {
    locks: BTreeMap<String, Holding>,
    /// High-water command timestamp (ms).
    clock_ms: u64,
}

impl LockService {
    /// An empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current holder of `name` (leases judged by the last seen command
    /// timestamp).
    pub fn holder(&self, name: &str) -> Option<NodeId> {
        self.locks
            .get(name)
            .filter(|h| !Self::expired(h, self.clock_ms))
            .map(|h| h.owner)
    }

    /// Number of currently held (non-expired) locks.
    pub fn held_count(&self) -> usize {
        self.locks
            .values()
            .filter(|h| !Self::expired(h, self.clock_ms))
            .count()
    }

    fn expired(h: &Holding, now_ms: u64) -> bool {
        h.lease.map(|(exp, _)| now_ms >= exp).unwrap_or(false)
    }

    fn advance_clock(&mut self, now_ms: u64) {
        self.clock_ms = self.clock_ms.max(now_ms);
    }

    /// The live (non-expired) holding for `name`.
    fn live(&self, name: &str) -> Option<&Holding> {
        self.locks
            .get(name)
            .filter(|h| !Self::expired(h, self.clock_ms))
    }
}

impl StateMachine for LockService {
    type Command = LockCmd;
    type Response = LockResp;

    fn apply(&mut self, cmd: &LockCmd) -> LockResp {
        match cmd {
            LockCmd::Acquire { name, owner } => match self.live(name) {
                None => {
                    self.locks.insert(
                        name.clone(),
                        Holding {
                            owner: *owner,
                            lease: None,
                        },
                    );
                    LockResp::Granted
                }
                Some(h) if h.owner == *owner => LockResp::Granted,
                Some(h) => LockResp::Busy { holder: h.owner },
            },
            LockCmd::AcquireLease {
                name,
                owner,
                now_ms,
                ttl_ms,
            } => {
                self.advance_clock(*now_ms);
                match self.live(name) {
                    Some(h) if h.owner != *owner => LockResp::Busy { holder: h.owner },
                    _ => {
                        self.locks.insert(
                            name.clone(),
                            Holding {
                                owner: *owner,
                                lease: Some((now_ms + ttl_ms, *ttl_ms)),
                            },
                        );
                        LockResp::Granted
                    }
                }
            }
            LockCmd::Renew {
                name,
                owner,
                now_ms,
            } => {
                self.advance_clock(*now_ms);
                match self.live(name) {
                    Some(h) if h.owner == *owner => match h.lease {
                        Some((_, ttl)) => {
                            let until = now_ms + ttl;
                            self.locks.insert(
                                name.clone(),
                                Holding {
                                    owner: *owner,
                                    lease: Some((until, ttl)),
                                },
                            );
                            LockResp::Renewed { until_ms: until }
                        }
                        None => LockResp::Granted, // unleased locks never expire
                    },
                    _ => LockResp::NotHeld,
                }
            }
            LockCmd::Release { name, owner } => match self.live(name) {
                Some(h) if h.owner == *owner => {
                    self.locks.remove(name);
                    LockResp::Released
                }
                _ => {
                    // Clean out an expired husk either way.
                    if self
                        .locks
                        .get(name)
                        .map(|h| Self::expired(h, self.clock_ms))
                        .unwrap_or(false)
                    {
                        self.locks.remove(name);
                    }
                    LockResp::NotHeld
                }
            },
            LockCmd::Holder { name } => LockResp::HolderIs(self.live(name).map(|h| h.owner)),
        }
    }

    fn is_read_only(cmd: &LockCmd) -> bool {
        matches!(cmd, LockCmd::Holder { .. })
    }

    fn peek(&self, cmd: &LockCmd) -> Option<LockResp> {
        match cmd {
            LockCmd::Holder { name } => {
                Some(LockResp::HolderIs(self.live(name).map(|h| h.owner)))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: usize) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn acquire_release_cycle() {
        let mut s = LockService::new();
        let acq = |s: &mut LockService, o| {
            s.apply(&LockCmd::Acquire {
                name: "master".into(),
                owner: o,
            })
        };
        assert_eq!(acq(&mut s, c(1)), LockResp::Granted);
        assert_eq!(acq(&mut s, c(2)), LockResp::Busy { holder: c(1) });
        // Re-entrant acquire by the holder.
        assert_eq!(acq(&mut s, c(1)), LockResp::Granted);
        assert_eq!(
            s.apply(&LockCmd::Release {
                name: "master".into(),
                owner: c(2)
            }),
            LockResp::NotHeld
        );
        assert_eq!(
            s.apply(&LockCmd::Release {
                name: "master".into(),
                owner: c(1)
            }),
            LockResp::Released
        );
        assert_eq!(acq(&mut s, c(2)), LockResp::Granted);
    }

    #[test]
    fn holder_query() {
        let mut s = LockService::new();
        assert_eq!(
            s.apply(&LockCmd::Holder { name: "x".into() }),
            LockResp::HolderIs(None)
        );
        s.apply(&LockCmd::Acquire {
            name: "x".into(),
            owner: c(7),
        });
        assert_eq!(
            s.apply(&LockCmd::Holder { name: "x".into() }),
            LockResp::HolderIs(Some(c(7)))
        );
        assert_eq!(s.held_count(), 1);
    }

    #[test]
    fn determinism_under_replay() {
        let cmds = [
            LockCmd::Acquire {
                name: "a".into(),
                owner: c(1),
            },
            LockCmd::Acquire {
                name: "b".into(),
                owner: c(2),
            },
            LockCmd::Release {
                name: "a".into(),
                owner: c(1),
            },
            LockCmd::Acquire {
                name: "a".into(),
                owner: c(2),
            },
        ];
        let mut s1 = LockService::new();
        let mut s2 = LockService::new();
        let r1: Vec<LockResp> = cmds.iter().map(|c| s1.apply(c)).collect();
        let r2: Vec<LockResp> = cmds.iter().map(|c| s2.apply(c)).collect();
        assert_eq!(r1, r2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn leases_expire_and_free_the_lock() {
        let mut s = LockService::new();
        let r = s.apply(&LockCmd::AcquireLease {
            name: "lease".into(),
            owner: c(1),
            now_ms: 1_000,
            ttl_ms: 500,
        });
        assert_eq!(r, LockResp::Granted);
        assert_eq!(s.holder("lease"), Some(c(1)));
        // Before expiry another client is refused.
        let r = s.apply(&LockCmd::AcquireLease {
            name: "lease".into(),
            owner: c(2),
            now_ms: 1_400,
            ttl_ms: 500,
        });
        assert_eq!(r, LockResp::Busy { holder: c(1) });
        // After expiry the lock is free and transferrable.
        let r = s.apply(&LockCmd::AcquireLease {
            name: "lease".into(),
            owner: c(2),
            now_ms: 1_600,
            ttl_ms: 500,
        });
        assert_eq!(r, LockResp::Granted);
        assert_eq!(s.holder("lease"), Some(c(2)));
    }

    #[test]
    fn renew_extends_the_lease() {
        let mut s = LockService::new();
        s.apply(&LockCmd::AcquireLease {
            name: "l".into(),
            owner: c(1),
            now_ms: 0,
            ttl_ms: 100,
        });
        // Renew at 80: new expiry 180.
        let r = s.apply(&LockCmd::Renew {
            name: "l".into(),
            owner: c(1),
            now_ms: 80,
        });
        assert_eq!(r, LockResp::Renewed { until_ms: 180 });
        // Still held at 150 (past the original expiry).
        let r = s.apply(&LockCmd::Holder { name: "l".into() });
        assert_eq!(r, LockResp::HolderIs(Some(c(1))));
        // A renew after expiry fails.
        let mut s2 = s.clone();
        let r = s2.apply(&LockCmd::Renew {
            name: "l".into(),
            owner: c(1),
            now_ms: 500,
        });
        assert_eq!(r, LockResp::NotHeld);
        // Only the owner can renew.
        let r = s.apply(&LockCmd::Renew {
            name: "l".into(),
            owner: c(2),
            now_ms: 100,
        });
        assert_eq!(r, LockResp::NotHeld);
    }

    #[test]
    fn unleased_locks_never_expire() {
        let mut s = LockService::new();
        s.apply(&LockCmd::Acquire {
            name: "forever".into(),
            owner: c(1),
        });
        // Time marches on through other commands.
        s.apply(&LockCmd::AcquireLease {
            name: "other".into(),
            owner: c(2),
            now_ms: 1_000_000,
            ttl_ms: 1,
        });
        assert_eq!(s.holder("forever"), Some(c(1)));
        // Renew on an unleased lock is a harmless Granted.
        let r = s.apply(&LockCmd::Renew {
            name: "forever".into(),
            owner: c(1),
            now_ms: 2_000_000,
        });
        assert_eq!(r, LockResp::Granted);
    }

    #[test]
    fn expired_husk_is_cleaned_by_release() {
        let mut s = LockService::new();
        s.apply(&LockCmd::AcquireLease {
            name: "x".into(),
            owner: c(1),
            now_ms: 0,
            ttl_ms: 10,
        });
        s.apply(&LockCmd::AcquireLease {
            name: "y".into(),
            owner: c(2),
            now_ms: 100,
            ttl_ms: 10,
        });
        assert_eq!(s.holder("x"), None, "x expired");
        // Release by the stale owner reports NotHeld but clears the husk.
        let r = s.apply(&LockCmd::Release {
            name: "x".into(),
            owner: c(1),
        });
        assert_eq!(r, LockResp::NotHeld);
        let r = s.apply(&LockCmd::Acquire {
            name: "x".into(),
            owner: c(3),
        });
        assert_eq!(r, LockResp::Granted);
    }

    #[test]
    fn never_two_holders() {
        // Exhaustive interleaving of two clients competing for one lock:
        // after every command the lock has at most one holder.
        let mut s = LockService::new();
        let script = [
            LockCmd::Acquire {
                name: "l".into(),
                owner: c(1),
            },
            LockCmd::Acquire {
                name: "l".into(),
                owner: c(2),
            },
            LockCmd::Release {
                name: "l".into(),
                owner: c(2),
            },
            LockCmd::Acquire {
                name: "l".into(),
                owner: c(2),
            },
            LockCmd::Release {
                name: "l".into(),
                owner: c(1),
            },
            LockCmd::Acquire {
                name: "l".into(),
                owner: c(2),
            },
        ];
        for cmd in &script {
            s.apply(cmd);
            assert!(s.held_count() <= 1);
        }
        assert_eq!(s.holder("l"), Some(c(2)));
    }
}
