//! The chaos-suite environment knobs and the failure re-run command.
//!
//! * `CHAOS_SCHEDULES=<n>` — how many random schedules each sweep runs
//!   (defaults keep the whole suite inside the CI budget; crank it up
//!   for soak runs: `CHAOS_SCHEDULES=5000 cargo test -q --test chaos`).
//! * `CHAOS_SEED=<seed>` — pin the base seed instead of the suite
//!   default; with `CHAOS_SCHEDULES=1` this reproduces one failing
//!   schedule exactly.

/// Number of schedules a sweep should run: `CHAOS_SCHEDULES` when set
/// and parseable, `default_n` otherwise.
pub fn chaos_schedules(default_n: usize) -> usize {
    std::env::var("CHAOS_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_n)
        .max(1)
}

/// Base seed for a sweep: `CHAOS_SEED` when set and parseable (decimal
/// or `0x…` hex), `default` otherwise.
pub fn chaos_seed(default: u64) -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|v| parse_seed(&v))
        .unwrap_or(default)
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// The exact command that re-runs one failing schedule: printed by every
/// chaos failure so reproduction is copy-paste.
pub fn repro_command(test_name: &str, seed: u64) -> String {
    format!("CHAOS_SEED={seed:#x} CHAOS_SCHEDULES=1 cargo test -q --test chaos {test_name} -- --nocapture")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_parses_decimal_and_hex() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0x2a"), Some(42));
        assert_eq!(parse_seed("0X2A"), Some(42));
        assert_eq!(parse_seed(" 7 "), Some(7));
        assert_eq!(parse_seed("nope"), None);
    }

    #[test]
    fn repro_command_carries_seed_and_test() {
        let cmd = repro_command("lock_sweep", 0xDEAD);
        assert!(cmd.contains("CHAOS_SEED=0xdead"));
        assert!(cmd.contains("CHAOS_SCHEDULES=1"));
        assert!(cmd.contains("lock_sweep"));
    }
}
