//! Property-based tests of the Reed–Solomon codec: for every code shape
//! and payload, any `m` survivors reconstruct the object exactly.

use erasure::{Gf, ReedSolomon};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round trip: encode, drop all but a random m-subset, decode.
    #[test]
    fn any_m_of_n_reconstructs(
        m in 1usize..=6,
        extra in 1usize..=4,
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        subset_seed in any::<u64>(),
    ) {
        let n = m + extra;
        let rs = ReedSolomon::new(m, n);
        let shards = rs.encode_object(&data);
        prop_assert_eq!(shards.len(), n);

        // Pick a pseudo-random m-subset of survivors.
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = subset_seed;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let keep: std::collections::HashSet<usize> = order.into_iter().take(m).collect();
        let partial: Vec<Option<Vec<u8>>> = shards
            .iter()
            .enumerate()
            .map(|(i, sh)| keep.contains(&i).then(|| sh.to_vec()))
            .collect();
        let decoded = rs.decode_object(&partial).expect("m survivors decode");
        prop_assert_eq!(decoded, data);
    }

    /// Fewer than m shards must fail loudly, never return wrong data.
    #[test]
    fn below_threshold_always_errors(
        m in 2usize..=5,
        extra in 1usize..=3,
        data in proptest::collection::vec(any::<u8>(), 1..512),
    ) {
        let n = m + extra;
        let rs = ReedSolomon::new(m, n);
        let shards = rs.encode_object(&data);
        let partial: Vec<Option<Vec<u8>>> = shards
            .iter()
            .enumerate()
            .map(|(i, sh)| (i < m - 1).then(|| sh.to_vec()))
            .collect();
        prop_assert!(rs.decode_object(&partial).is_err());
    }

    /// Parity shards are linear: encoding the XOR of two shard sets
    /// equals the XOR of the encodings (GF(2⁸) addition is XOR).
    #[test]
    fn encoding_is_linear(
        a in proptest::collection::vec(any::<u8>(), 30..60),
        b in proptest::collection::vec(any::<u8>(), 30..60),
    ) {
        let rs = ReedSolomon::new(3, 5);
        let len = a.len().min(b.len()) / 3 * 3;
        if len == 0 { return Ok(()); }
        let (a, b) = (&a[..len], &b[..len]);
        let shards = |x: &[u8]| -> Vec<Vec<u8>> {
            let data: Vec<Vec<u8>> = x.chunks(len / 3).map(<[u8]>::to_vec).collect();
            rs.encode(&data).expect("well-formed")
        };
        let ea = shards(a);
        let eb = shards(b);
        let xored: Vec<u8> = a.iter().zip(b).map(|(x, y)| x ^ y).collect();
        let ex = shards(&xored);
        for i in 0..5 {
            let manual: Vec<u8> = ea[i].iter().zip(&eb[i]).map(|(x, y)| x ^ y).collect();
            prop_assert_eq!(&ex[i], &manual, "shard {}", i);
        }
    }

    /// Field axioms on random elements.
    #[test]
    fn gf256_field_axioms(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        let (a, b, c) = (Gf(a), Gf(b), Gf(c));
        // Associativity and commutativity of multiplication.
        prop_assert_eq!(a.mul(b).mul(c), a.mul(b.mul(c)));
        prop_assert_eq!(a.mul(b), b.mul(a));
        // Distributivity.
        prop_assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
        // Inverses.
        if a != Gf::ZERO {
            prop_assert_eq!(a.mul(a.inv()), Gf::ONE);
            prop_assert_eq!(a.div(a), Gf::ONE);
        }
    }
}
