//! System tests for the heterogeneous-pool refactor: the PR 8
//! single-type fingerprints stay pinned, the auto-scaler follows the
//! diurnal load deterministically without oscillating, and the hetero
//! sweep grid is independent of the rayon thread count.

use spot_jupiter::jupiter::{ExtraStrategy, JupiterStrategy, ModelStore, ServiceSpec};
use spot_jupiter::obs::{AuditKind, Obs};
use spot_jupiter::replay::experiments::{
    diurnal_rate, lock_sweep, Scale, PER_STRENGTH_THROUGHPUT,
};
use spot_jupiter::replay::{
    demand_series, replay_autoscale_stored, AutoScaler, AutoscaleConfig, RepairConfig,
    ReplayConfig, ReplayResult, Scenario, SweepSpec,
};
use spot_jupiter::spot_market::InstanceType;
use test_util::hetero_market_days;

/// The exact quick-scale Figure 6 numbers committed in PR 8: the legacy
/// single-type path must keep replaying byte-identically now that the
/// framework is pool-aware (single-type specs take the legacy selection
/// branch, so every cost, availability, and kill count is unchanged).
#[test]
fn single_type_quick_sweep_reproduces_pr8_fingerprints() {
    let rows = lock_sweep(&Scale::quick(2014));
    let got: Vec<(String, String, String, usize)> = rows
        .iter()
        .map(|r| {
            (
                r.strategy.clone(),
                format!("{:.2}", r.cost.as_dollars()),
                format!("{:.6}", r.availability),
                r.kills,
            )
        })
        .collect();
    let want = [
        ("Baseline", "36.96", "0.999990", 0),
        ("Extra(0,0.2)", "3.92", "0.797817", 65),
        ("Extra(2,0.2)", "6.79", "0.962202", 68),
        ("Jupiter", "6.55", "1.000000", 2),
    ];
    let want: Vec<(String, String, String, usize)> = want
        .iter()
        .map(|(s, c, a, k)| (s.to_string(), c.to_string(), a.to_string(), *k))
        .collect();
    assert_eq!(got, want, "PR 8 quick fig6 fingerprints drifted");
}

fn autoscale_run(seed: u64) -> (ReplayResult, (u64, u64), Vec<(String, String)>) {
    let train = 5 * 24 * 60;
    let m = hetero_market_days(seed, 6, 10);
    let spec = ServiceSpec::lock_service().with_pools(&[InstanceType::M1Small, InstanceType::M3Large]);
    let demand = demand_series(diurnal_rate, train, m.horizon(), 60, PER_STRENGTH_THROUGHPUT);
    let mut scaler = AutoScaler::new(
        AutoscaleConfig {
            min_strength: 4,
            max_strength: 24,
            ..AutoscaleConfig::default()
        },
        demand,
    );
    let (obs, _clock) = Obs::simulated();
    let r = replay_autoscale_stored(
        &m,
        &spec,
        JupiterStrategy::new(),
        ReplayConfig::new(train, m.horizon(), 3),
        RepairConfig::off(),
        |_| 180,
        &ModelStore::new(),
        &mut scaler,
        &obs,
    );
    let decisions: Vec<(String, String)> = obs
        .audit
        .snapshot()
        .iter()
        .filter_map(|rec| match &rec.kind {
            AuditKind::ScaleDecision { action, reason, .. } => {
                Some((action.clone(), reason.clone()))
            }
            _ => None,
        })
        .collect();
    (r, scaler.scale_events(), decisions)
}

/// Under the diurnal demand curve the controller must scale out into the
/// daily peak — and do so identically on every run.
#[test]
fn autoscaler_scales_out_under_diurnal_peak_deterministically() {
    let (a, (outs_a, ins_a), decisions_a) = autoscale_run(11);
    assert!(outs_a >= 1, "no scale-out under a 12.8x diurnal peak");
    assert!(
        decisions_a
            .iter()
            .any(|(_, reason)| reason == "demand_exceeds_target"),
        "no demand-driven scale-out audited: {decisions_a:?}"
    );
    let (b, (outs_b, ins_b), decisions_b) = autoscale_run(11);
    assert_eq!(a.total_cost, b.total_cost);
    assert_eq!(a.up_minutes, b.up_minutes);
    assert_eq!(a.instances.len(), b.instances.len());
    assert_eq!((outs_a, ins_a), (outs_b, ins_b));
    assert_eq!(decisions_a, decisions_b);
}

/// Scale-in hysteresis: the audited decision stream never shrinks the
/// target without first holding through the full hysteresis window, so a
/// diurnal trough cannot oscillate the fleet.
#[test]
fn scale_in_waits_out_hysteresis_in_replay() {
    let cfg = AutoscaleConfig::default();
    let (_, (_, ins), decisions) = autoscale_run(11);
    assert!(ins >= 1, "diurnal trough never scaled in: {decisions:?}");
    let need = cfg.hysteresis_intervals as usize - 1;
    for (i, (action, reason)) in decisions.iter().enumerate() {
        if action == "scale_in" {
            assert_eq!(reason, "sustained_headroom");
            assert!(i >= need, "scale-in at decision {i} inside hysteresis");
            for (prev_action, _) in &decisions[i - need..i] {
                assert_eq!(
                    prev_action, "hold",
                    "scale-in at {i} not preceded by {need} holds: {decisions:?}"
                );
            }
        }
    }
}

fn sweep_cells() -> Vec<(u64, Vec<InstanceType>, String, String, String, usize)> {
    let m = hetero_market_days(5, 4, 10);
    let horizon = m.horizon();
    let scenario = Scenario::new(m, 5 * 24 * 60, horizon);
    let sweep = SweepSpec::new(
        ServiceSpec::lock_service()
            .with_pools(&[InstanceType::M1Small, InstanceType::M3Large])
            .with_min_strength(8),
    )
    .strategy(|_| Box::new(JupiterStrategy::new()))
    .strategy(|_| Box::new(ExtraStrategy::new(2, 0.2)))
    .intervals([6u64])
    .pools(vec![
        vec![InstanceType::M1Small],
        vec![InstanceType::M3Large],
        vec![InstanceType::M1Small, InstanceType::M3Large],
    ]);
    scenario
        .run(&sweep)
        .into_iter()
        .map(|cell| {
            (
                cell.interval_hours,
                cell.pool_types.clone(),
                cell.result.strategy.clone(),
                format!("{:.6}", cell.result.total_cost.as_dollars()),
                format!("{:.9}", cell.result.availability()),
                cell.result.instances.len(),
            )
        })
        .collect()
}

/// The hetero sweep grid must not depend on how the cells are
/// scheduled: every run replays the exact same numbers cell by cell.
/// (The vendored rayon shim executes cells sequentially in-process; the
/// `RAYON_NUM_THREADS=1` cross-check on the repro binary lives in
/// ci.sh, which diffs the hetero target's output against a default run.)
#[test]
fn hetero_sweep_is_schedule_deterministic() {
    let first = sweep_cells();
    assert_eq!(first.len(), 6, "2 strategies x 1 interval x 3 pool columns");
    let second = sweep_cells();
    assert_eq!(first, second);
}
