//! Offline shim for the subset of `proptest` this workspace uses: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, numeric range and
//! `any::<T>()` strategies, tuple strategies, `collection::vec`, and the
//! `prop_assert*` macros.
//!
//! Semantics: each test runs `ProptestConfig::cases` iterations with
//! inputs drawn from a ChaCha8 stream seeded deterministically from the
//! test's module path and name, so failures reproduce across runs. There
//! is **no shrinking** — a failing case reports the case number and the
//! assertion message only.

// Vendored API-compat shim: exempt from workspace lint policy.
#![allow(clippy::all)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, SeedableRng};

/// The RNG driving input generation.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Per-test configuration. Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` iterations.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// A failed property assertion, raised by `prop_assert!`/`prop_assert_eq!`.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// An error carrying `message`.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.sample(rng))
    }
}

impl<T: rand::SampleUniform> Strategy for Range<T>
where
    Range<T>: Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::SampleUniform> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Strategy drawing from the full "standard" distribution of `T`
/// (full integer range, `[0, 1)` for floats).
pub struct Any<T>(PhantomData<T>);

/// `any::<T>()`: arbitrary values of `T`.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specifications accepted by [`vec`].
    pub trait IntoSizeBounds {
        /// Inclusive `(min, max)` length bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeBounds for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }
    impl IntoSizeBounds for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }
    impl IntoSizeBounds for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// A strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeBounds) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything tests import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

// ---- macro support ------------------------------------------------------

/// Deterministic seed for a test, derived from its full path (FNV-1a).
#[doc(hidden)]
pub fn __seed_for(test_path: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A fresh RNG for one case of one test.
#[doc(hidden)]
pub fn __new_rng(seed: u64, case: u32) -> TestRng {
    TestRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The `proptest! { ... }` test-definition macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed =
                    $crate::__seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::__new_rng(seed, case);
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)+
                    let mut __proptest_case =
                        move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        };
                    if let ::std::result::Result::Err(e) = __proptest_case() {
                        ::std::panic!(
                            "proptest case {}/{} (seed {seed:#x}) failed: {e}",
                            case + 1,
                            config.cases,
                        );
                    }
                }
            }
        )*
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// (Upstream rejects and redraws; here the case simply passes, which
/// preserves determinism at a small cost in effective case count.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Assert a property; on failure the current case errors with the
/// condition text (or a formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality; on failure the current case errors showing both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `left == right`\n  left: {left:?}\n right: {right:?}",
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `left == right`\n  left: {left:?}\n right: {right:?}\n {}",
                ::std::format!($($fmt)+),
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = Vec<(u64, f64)>> {
        crate::collection::vec((1u64..10, 0.0f64..1.0), 2..=5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..9, y in -2i64..=2, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((0.25..0.75).contains(&f), "f = {f}");
        }

        #[test]
        fn composite_strategies(mut v in pairs(), b in any::<u8>()) {
            prop_assert!((2..=5).contains(&v.len()));
            v.push((1, 0.0));
            prop_assert_eq!(*v.last().unwrap(), (1, 0.0));
            let mapped = (0u32..4).prop_map(|n| n * 2);
            let e = Strategy::sample(&mapped, &mut crate::__new_rng(b as u64, 0));
            prop_assert!(e % 2 == 0 && e < 8);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::__new_rng(crate::__seed_for("t"), 3);
        let mut b = crate::__new_rng(crate::__seed_for("t"), 3);
        let s = crate::collection::vec(0u64..100, 4..=4);
        assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
    }
}
