//! Safety checkers for the replicated services under fault injection.
//!
//! Both checkers return `Err(reason)` instead of panicking, so chaos
//! sweeps can shrink a failing schedule and attach a report instead of
//! dying at the first assert.
//!
//! # Lock-service invariants (Paxos, majority quorum)
//!
//! 1. **Agreement** — all live, non-retired replicas agree on the common
//!    prefix of applied `(slot, command)` pairs.
//! 2. **Exactly-once** — each replica's state machine equals a fresh
//!    replay of its own applied prefix under per-client request
//!    deduplication (the replica's own dedup semantics).
//! 3. **Response fidelity** — every response a client recorded matches
//!    the response the deduplicated log replay produces for that
//!    `(client, req_id)`; a completed operation may only be missing from
//!    the log if no later operation of the same client is present (the
//!    in-flight tail).
//! 4. **Mutual exclusion** — after every `Granted` in the replay, the
//!    model's holder is the grantee; at most one live holder per lock
//!    ever exists.
//! 5. **Lease monotonicity** — `Renewed { until_ms }` never moves a held
//!    lease's expiry backwards.
//! 6. **Batch atomicity** — a chosen `Command::Batch` is non-empty,
//!    carries at most one command per `(client, req_id)`, and is applied
//!    whole: the exactly-once check replays each replica's full prefix,
//!    so a replica that applied only some of a batch's entries diverges
//!    from the model and fails.
//!
//! # Storage invariants (RS-Paxos θ(m, n))
//!
//! 1. **Read-your-writes** — with one closed-loop writer per key, every
//!    completed `Get` returns exactly the latest completed `Put`'s bytes
//!    (or nothing after a `Delete`); `Unavailable` is tolerated and
//!    counted, wrong or stale data is not.
//! 2. **No phantom versions** — no live replica holds a version newer
//!    than the last acknowledged write.
//! 3. **Decoded-value** — for every present key, the shards held by live
//!    replicas at the newest acknowledged version include at least `m`
//!    actual byte shards, and decoding them reproduces the acknowledged
//!    object byte-for-byte.

use std::collections::HashMap;

use erasure::ReedSolomon;
use paxos::{
    ClientOp, Cluster, Command, LockCmd, LockResp, LockService, PaxosNode, StateMachine,
};
use simnet::NodeId;
use storage::{RsCluster, RsNode, StoreCmd, StoreResp};

/// What the lock checker verified (sizes for sanity asserts in tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct LockCheckStats {
    /// Length of the longest applied prefix that was model-replayed.
    pub replayed: usize,
    /// Client-recorded responses cross-checked against the replay.
    pub responses_checked: usize,
    /// Live replicas whose state machines were compared.
    pub replicas_checked: usize,
    /// Batch commands audited in the longest applied prefix. Each one
    /// passed the atomicity bar: well-formed (non-empty, no duplicate
    /// `(client, req_id)`), applied as one slot, and — via the
    /// exactly-once check — never applied as a strict subset of its
    /// entries on any replica.
    pub batches_checked: usize,
}

/// What the storage checker verified.
#[derive(Clone, Copy, Debug, Default)]
pub struct StorageCheckStats {
    /// Completed client operations scanned.
    pub ops_checked: usize,
    /// Reads that returned `Unavailable` (tolerated, reported).
    pub unavailable_reads: usize,
    /// Keys whose final value was decoded from live shards.
    pub keys_decoded: usize,
    /// Keys whose newest acknowledged version survives on fewer than `m`
    /// byte-carrying replicas. Tolerated but counted: repeated
    /// crash/restart cycles — each individually within the θ(m, n)
    /// margin — can erode shards because catch-up from a source without
    /// the full object restores version metadata only. A *wrong* decode
    /// is always a failure; a key that degraded to unreadable is this.
    pub eroded_keys: usize,
}

/// Run the full lock-service invariant suite against a cluster (after
/// the driver has let it settle: schedule done, clients drained).
pub fn check_lock_cluster(c: &Cluster<LockService>) -> Result<LockCheckStats, String> {
    let mut stats = LockCheckStats::default();

    // Live, non-retired replica prefixes.
    type Prefix = Vec<(u64, Command<LockCmd>)>;
    let prefixes: Vec<(NodeId, Prefix)> = c
        .servers()
        .iter()
        .filter_map(|&id| c.replica(id).map(|r| (id, r)))
        .filter(|(_, r)| !r.is_retired())
        .map(|(id, r)| (id, r.applied_prefix()))
        .collect();
    if prefixes.is_empty() {
        return Err("no live replicas to check".into());
    }

    // 1. Agreement on the common prefix.
    let min_len = prefixes.iter().map(|(_, p)| p.len()).min().unwrap_or(0);
    for i in 0..min_len {
        let (id0, p0) = &prefixes[0];
        for (id, p) in &prefixes[1..] {
            if p0[i] != p[i] {
                return Err(format!(
                    "log divergence at index {i}: {id0} has {:?}, {id} has {:?}",
                    p0[i], p[i]
                ));
            }
        }
    }

    // 2. Exactly-once: each replica equals the dedup-replay of its own
    // prefix.
    for (id, prefix) in &prefixes {
        let (model, _) = replay_dedup(prefix)?;
        let actual = c.replica(*id).expect("live replica").state_machine();
        if &model != actual {
            return Err(format!(
                "replica {id} state diverges from the dedup-replay of its own log"
            ));
        }
        stats.replicas_checked += 1;
    }

    // 3–5. Model replay of the longest prefix with shadow invariants.
    let longest = prefixes
        .iter()
        .max_by_key(|(_, p)| p.len())
        .map(|(_, p)| p.clone())
        .unwrap_or_default();
    stats.replayed = longest.len();
    stats.batches_checked = longest
        .iter()
        .filter(|(_, c)| matches!(c, Command::Batch(_)))
        .count();
    let (_, log_info) = replay_dedup(&longest)?;

    // Client histories vs the replayed responses.
    for &client in c.clients() {
        let Some(history) = c
            .sim
            .actor(client)
            .and_then(PaxosNode::as_client)
            .map(|cl| cl.history())
        else {
            continue;
        };
        let max_in_log = log_info.max_req.get(&client).copied().unwrap_or(0);
        for op in history {
            let Some((_, resp)) = &op.completed else {
                continue;
            };
            let ClientOp::App(_) = &op.op else {
                continue; // reconfig responses carry no SM payload
            };
            match log_info.responses.get(&(client, op.req_id)) {
                Some(expected) => {
                    let got = resp.as_ref();
                    if got != Some(expected) {
                        return Err(format!(
                            "client {client} req {} completed with {:?} but the log replay \
                             produced {:?}",
                            op.req_id, got, expected
                        ));
                    }
                    stats.responses_checked += 1;
                }
                None if op.req_id <= max_in_log => {
                    return Err(format!(
                        "client {client} req {} completed but is missing from the log \
                         (later req {} is present)",
                        op.req_id, max_in_log
                    ));
                }
                None => {} // in-flight tail not yet visible on live replicas
            }
        }
    }

    Ok(stats)
}

/// Bookkeeping produced by [`replay_dedup`].
#[derive(Default)]
struct LogReplayInfo {
    /// Response per `(client, req_id)` (first occurrence; dedup makes
    /// re-proposals identical).
    responses: HashMap<(NodeId, u64), LockResp>,
    /// Highest req_id per client present in the log.
    max_req: HashMap<NodeId, u64>,
}

/// Replay a log prefix through a fresh [`LockService`] with the
/// replica's dedup semantics, enforcing the mutual-exclusion and
/// lease-monotonicity invariants along the way.
fn replay_dedup(
    prefix: &[(u64, Command<LockCmd>)],
) -> Result<(LockService, LogReplayInfo), String> {
    let mut sm = LockService::new();
    let mut dedup: HashMap<NodeId, (u64, LockResp)> = HashMap::new();
    let mut info = LogReplayInfo::default();
    // Lease expiry per lock, for monotonicity.
    let mut lease_until: HashMap<String, u64> = HashMap::new();
    // Shadow of the service's high-water command clock: leases are judged
    // dead once `clock >= expiry`, including at the moment of grant (a
    // lease acquired with an old timestamp can be dead on arrival).
    let mut clock: u64 = 0;

    for (slot, cmd) in prefix {
        // A batch is one slot value applied atomically: flatten it into
        // per-entry applications after checking it is well-formed. A
        // partially applied batch cannot hide here — the exactly-once
        // check compares each replica's machine against this replay of
        // its own full prefix, so any replica that applied a strict
        // subset of a batch's entries diverges from the model.
        let entries: Vec<(NodeId, u64, &LockCmd)> = match cmd {
            Command::Noop => continue,
            Command::Reconfig { client, req_id, .. } => {
                let m = info.max_req.entry(*client).or_default();
                *m = (*m).max(*req_id);
                continue;
            }
            Command::App {
                client,
                req_id,
                cmd,
            } => vec![(*client, *req_id, cmd)],
            Command::Batch(batch) => {
                if batch.is_empty() {
                    return Err(format!("slot {slot}: empty batch was chosen"));
                }
                let mut seen = std::collections::HashSet::new();
                for e in batch {
                    if !seen.insert((e.client, e.req_id)) {
                        return Err(format!(
                            "slot {slot}: batch contains ({}, {}) twice",
                            e.client, e.req_id
                        ));
                    }
                }
                batch.iter().map(|e| (e.client, e.req_id, &e.cmd)).collect()
            }
        };
        for (client, req_id, cmd) in entries {
            {
                let m = info.max_req.entry(client).or_default();
                *m = (*m).max(req_id);
                let already = dedup
                    .get(&client)
                    .map(|(last, _)| *last >= req_id)
                    .unwrap_or(false);
                let resp = if already {
                    dedup.get(&client).expect("dedup entry").1.clone()
                } else {
                    if let LockCmd::AcquireLease { now_ms, .. } | LockCmd::Renew { now_ms, .. } =
                        cmd
                    {
                        clock = clock.max(*now_ms);
                    }
                    let resp = sm.apply(cmd);
                    dedup.insert(client, (req_id, resp.clone()));

                    // 4. Mutual exclusion: a grant installs its owner.
                    if resp == LockResp::Granted {
                        match cmd {
                            LockCmd::Acquire { name, owner }
                                if sm.holder(name) != Some(*owner) =>
                            {
                                return Err(format!(
                                    "slot {slot}: {owner} granted {name:?} but the \
                                     model holder is {:?}",
                                    sm.holder(name)
                                ));
                            }
                            LockCmd::Acquire { .. } => {}
                            LockCmd::AcquireLease {
                                name,
                                owner,
                                now_ms,
                                ttl_ms,
                            } => {
                                let exp = now_ms + ttl_ms;
                                let want = if clock < exp {
                                    Some(*owner)
                                } else {
                                    // Dead-on-arrival grant: the lease was
                                    // already over at the grant clock.
                                    None
                                };
                                if sm.holder(name) != want {
                                    return Err(format!(
                                        "slot {slot}: {owner} granted {name:?} (exp \
                                         {exp}, clock {clock}) but the model holder \
                                         is {:?}",
                                        sm.holder(name)
                                    ));
                                }
                                if want.is_some() {
                                    lease_until.insert(name.clone(), exp);
                                } else {
                                    lease_until.remove(name);
                                }
                            }
                            _ => {}
                        }
                    }
                    // 5. Lease monotonicity.
                    match (cmd, &resp) {
                        (LockCmd::Renew { name, .. }, LockResp::Renewed { until_ms }) => {
                            let prev = lease_until.get(name).copied().unwrap_or(0);
                            if *until_ms < prev {
                                return Err(format!(
                                    "slot {slot}: lease on {name:?} renewed backwards \
                                     ({until_ms} < {prev})"
                                ));
                            }
                            lease_until.insert(name.clone(), *until_ms);
                        }
                        (LockCmd::Release { name, .. }, LockResp::Released) => {
                            lease_until.remove(name);
                        }
                        _ => {}
                    }
                    resp
                };
                info.responses.entry((client, req_id)).or_insert(resp);
            }
        }
    }
    Ok((sm, info))
}

/// Run the storage invariant suite. `writers` are the closed-loop
/// clients to audit (the workload must use one writer per key for the
/// read-your-writes check to be exact); `m` is the erasure data-shard
/// count of the deployment.
pub fn check_storage_cluster(
    c: &RsCluster,
    writers: &[NodeId],
    m: usize,
) -> Result<StorageCheckStats, String> {
    let mut stats = StorageCheckStats::default();
    let n = c.servers().len();
    let codec = ReedSolomon::new(m, n);

    // 1. Read-your-writes over each writer's history; build the expected
    // final image along the way.
    let mut expected: HashMap<String, (u64, Option<bytes::Bytes>)> = HashMap::new();
    for &client in writers {
        let Some(history) = c
            .sim
            .actor(client)
            .and_then(RsNode::as_client)
            .map(|cl| cl.history())
        else {
            continue;
        };
        for op in history {
            let Some((_, resp)) = &op.completed else {
                continue;
            };
            stats.ops_checked += 1;
            match (&op.cmd, resp) {
                (StoreCmd::Put { key, object }, StoreResp::Stored { version }) => {
                    if let Some((prev, _)) = expected.get(key) {
                        if version <= prev {
                            return Err(format!(
                                "put of {key:?} acknowledged at version {version}, not after \
                                 the previous {prev}"
                            ));
                        }
                    }
                    expected.insert(key.clone(), (*version, Some(object.clone())));
                }
                (StoreCmd::Put { key, .. }, other) => {
                    return Err(format!("put of {key:?} answered {other:?}"));
                }
                (StoreCmd::Delete { key }, StoreResp::Deleted) => {
                    let version = expected.get(key).map(|(v, _)| *v).unwrap_or(0);
                    expected.insert(key.clone(), (version, None));
                }
                (StoreCmd::Delete { key }, other) => {
                    return Err(format!("delete of {key:?} answered {other:?}"));
                }
                (StoreCmd::Get { key }, StoreResp::Value { object }) => {
                    let want = expected.get(key).and_then(|(_, o)| o.as_ref());
                    if object.as_ref() != want {
                        return Err(format!(
                            "stale or wrong read of {key:?}: got {:?} bytes, wanted {:?}",
                            object.as_ref().map(|b| b.len()),
                            want.map(|b| b.len())
                        ));
                    }
                }
                (StoreCmd::Get { .. }, StoreResp::Unavailable) => {
                    stats.unavailable_reads += 1;
                }
                (StoreCmd::Get { key }, other) => {
                    return Err(format!("get of {key:?} answered {other:?}"));
                }
            }
        }
    }

    // 2 + 3. Per-key shard audit across live replicas.
    for (key, (version, object)) in &expected {
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; n];
        let mut newest = 0u64;
        for &id in c.servers() {
            let Some(r) = c.replica(id) else { continue };
            if let Some(e) = r.store().get(key) {
                newest = newest.max(e.version);
                if e.version > *version {
                    return Err(format!(
                        "replica {id} holds phantom version {} of {key:?} (last \
                         acknowledged {version})",
                        e.version
                    ));
                }
                if e.version == *version {
                    if let Some(bytes) = &e.shard {
                        shards[e.shard_idx as usize] = Some(bytes.to_vec());
                    }
                }
            }
        }
        let Some(object) = object else {
            continue; // deleted key: phantom check above is all we assert
        };
        let present = shards.iter().filter(|s| s.is_some()).count();
        if newest < *version {
            return Err(format!(
                "no live replica reached acknowledged version {version} of {key:?}"
            ));
        }
        if present < m {
            stats.eroded_keys += 1;
            continue;
        }
        let decoded = codec
            .decode_object(&shards)
            .map_err(|e| format!("decoding {key:?}@{version}: {e:?}"))?;
        if decoded != object.as_ref() {
            return Err(format!(
                "decoded value of {key:?}@{version} differs from the acknowledged write"
            ));
        }
        stats.keys_decoded += 1;
    }

    Ok(stats)
}
