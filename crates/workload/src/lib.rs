//! # workload — request-level open-loop load generation over `simnet`
//!
//! The paper evaluates availability at the granularity of *instances*
//! (§5: fraction of bidding intervals with a live quorum). This crate
//! adds the missing request-level view: a seeded open-loop workload
//! engine that drives the Paxos lock service and the RS-Paxos store
//! with Poisson / bursty / diurnal arrival processes, measures each
//! request from scheduled arrival to completion (no coordinated
//! omission), and reduces the outcomes to latency quantiles, a
//! per-second throughput series, and an **SLO availability** — the
//! fraction of requests answered within a latency bound — to sit
//! alongside the paper's fleet-based figure.
//!
//! Determinism contract: arrival times and the command mix come from
//! sequential ChaCha8 streams derived from the spec seed, and the
//! simulation itself is a deterministic DES, so a spec replays
//! bit-identically under any thread count.

pub mod arrival;
pub mod engine;

pub use arrival::{split_round_robin, ArrivalProcess};
pub use engine::{run_lock_workload, run_storage_workload, WorkloadReport, WorkloadSpec};
