//! The shared frozen-model store: one trained kernel per
//! (zone, instance type, trained-until minute), reused by every framework
//! that evaluates the same market history.
//!
//! The experiment sweeps replay the same market under many
//! (strategy, interval) cells; every cell used to refit the semi-Markov
//! kernel on the identical training prefix. The store memoizes the fit by
//! its identity key and hands out `Arc<FrozenKernel>` snapshots, so a
//! sweep performs at most zones × types fits no matter how many cells it
//! runs. Per-cell *online* refinement stays private: frameworks fork the
//! shared kernel copy-on-write (see [`spot_model::FrozenKernel::extend`]),
//! never mutating the stored base.
//!
//! Work counters (`model_store.fits_performed`, `model_store.fits_reused`)
//! make redundant-fit regressions visible to the bench baseline.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use obs::Obs;
use spot_market::{InstanceType, Zone};
use spot_model::FrozenKernel;

/// Identity of one trained kernel: the market slice it was fitted on.
///
/// `trained_until` is the exclusive end minute of the training window
/// (windows always start at 0 — replays train on the revealed prefix), so
/// two cells sharing a decision schedule share the key regardless of their
/// strategy or bidding interval.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ModelKey {
    /// Availability zone the trace belongs to.
    pub zone: Zone,
    /// Instance type of the trace.
    pub instance_type: InstanceType,
    /// Exclusive end minute of the `[0, trained_until)` training window.
    pub trained_until: u64,
}

/// A concurrent memo table of frozen kernels keyed by [`ModelKey`].
#[derive(Default)]
pub struct ModelStore {
    cells: Mutex<HashMap<ModelKey, Arc<OnceLock<Arc<FrozenKernel>>>>>,
    obs: Obs,
}

impl ModelStore {
    /// An empty store with observability disabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store recording `model_store.*` instruments into `obs`.
    pub fn with_obs(obs: Obs) -> Self {
        ModelStore {
            cells: Mutex::new(HashMap::new()),
            obs,
        }
    }

    /// The kernel for `key`, fitting it with `fit` on first request.
    ///
    /// Concurrent requests for the same key block on one fit (per-key
    /// `OnceLock`, so distinct keys still fit in parallel); every caller
    /// gets the same shared snapshot. Counts one of
    /// `model_store.fits_performed` / `model_store.fits_reused` per call.
    pub fn get_or_fit(
        &self,
        key: ModelKey,
        fit: impl FnOnce() -> FrozenKernel,
    ) -> Arc<FrozenKernel> {
        let cell = {
            let mut cells = self.cells.lock().expect("model store poisoned");
            Arc::clone(cells.entry(key).or_default())
        };
        let mut fitted = false;
        let kernel = Arc::clone(cell.get_or_init(|| {
            fitted = true;
            let fit_micros = self.obs.histogram("model_store.fit_micros");
            Arc::new(fit_micros.time(fit))
        }));
        if fitted {
            self.obs.counter("model_store.fits_performed").inc();
        } else {
            self.obs.counter("model_store.fits_reused").inc();
        }
        kernel
    }

    /// Number of distinct keys fitted so far.
    pub fn len(&self) -> usize {
        self.cells.lock().expect("model store poisoned").len()
    }

    /// Whether no kernel has been requested yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spot_market::{Price, PricePoint, PriceTrace};

    fn trace() -> PriceTrace {
        let mut points = Vec::new();
        let mut t = 0;
        for _ in 0..20 {
            points.push(PricePoint {
                minute: t,
                price: Price::from_dollars(0.01),
            });
            t += 5;
            points.push(PricePoint {
                minute: t,
                price: Price::from_dollars(0.02),
            });
            t += 3;
        }
        PriceTrace::new(points, t)
    }

    fn key(zone_idx: usize, until: u64) -> ModelKey {
        ModelKey {
            zone: spot_market::topology::all_zones()[zone_idx],
            instance_type: InstanceType::M1Small,
            trained_until: until,
        }
    }

    #[test]
    fn fits_once_per_key_and_counts_reuse() {
        let (obs, _clock) = Obs::simulated();
        let store = ModelStore::with_obs(obs.clone());
        let t = trace();
        let a = store.get_or_fit(key(0, 100), || FrozenKernel::from_trace(&t));
        let b = store.get_or_fit(key(0, 100), || panic!("must not refit"));
        assert!(Arc::ptr_eq(&a, &b), "same key shares one kernel");
        let c = store.get_or_fit(key(1, 100), || FrozenKernel::from_trace(&t));
        assert!(!Arc::ptr_eq(&a, &c));
        let _ = store.get_or_fit(key(0, 50), || FrozenKernel::from_trace(&t.window(0, 50)));
        assert_eq!(store.len(), 3);
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter("model_store.fits_performed"), Some(3));
        assert_eq!(snap.counter("model_store.fits_reused"), Some(1));
        assert_eq!(snap.histogram("model_store.fit_micros").unwrap().count, 3);
    }

    #[test]
    fn stored_kernel_matches_direct_fit() {
        let store = ModelStore::new();
        let t = trace();
        let stored = store.get_or_fit(key(0, 160), || FrozenKernel::from_trace(&t));
        let direct = FrozenKernel::from_trace(&t);
        assert_eq!(stored.prices(), direct.prices());
        assert_eq!(stored.total_transitions(), direct.total_transitions());
    }
}
