//! The market facade: a bundle of price traces plus query and billing
//! helpers, the single object the bidding framework and replay harness talk
//! to.

use std::collections::HashMap;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::billing::{spot_charge, Termination};
use crate::gen::{GenParams, TraceGenerator};
use crate::instance::InstanceType;
use crate::money::Price;
use crate::topology::Zone;
use crate::trace::PriceTrace;

/// Configuration of a simulated market.
#[derive(Clone, Debug)]
pub struct MarketConfig {
    /// Seed driving trace generation and startup-delay sampling.
    pub seed: u64,
    /// The zones trading in this market.
    pub zones: Vec<Zone>,
    /// The instance types traded.
    pub types: Vec<InstanceType>,
    /// Trace length in minutes.
    pub horizon_minutes: u64,
    /// Generator parameters (see [`GenParams`]).
    pub gen_params: GenParams,
}

impl MarketConfig {
    /// The paper's experimental setup: 17 availability zones, `m1.small`
    /// and `m3.large`, for the given horizon.
    pub fn paper(seed: u64, horizon_minutes: u64) -> Self {
        MarketConfig {
            seed,
            zones: crate::topology::experiment_zones(),
            types: vec![InstanceType::M1Small, InstanceType::M3Large],
            horizon_minutes,
            gen_params: GenParams::default(),
        }
    }
}

/// A complete spot market over a fixed horizon: per-(zone, type) price
/// traces, out-of-bid resolution, billing and startup delays.
#[derive(Clone, Debug)]
pub struct Market {
    config: MarketConfig,
    traces: HashMap<(Zone, InstanceType), PriceTrace>,
}

impl Market {
    /// Generate a market from its configuration (deterministic).
    pub fn generate(config: MarketConfig) -> Self {
        let gen = TraceGenerator::with_params(config.seed, config.gen_params.clone());
        let mut traces = HashMap::new();
        for &zone in &config.zones {
            for &ty in &config.types {
                traces.insert((zone, ty), gen.generate(zone, ty, config.horizon_minutes));
            }
        }
        Market { config, traces }
    }

    /// Build a market from externally supplied traces (e.g. real archived
    /// data); all traces must share the horizon.
    pub fn from_traces(
        config: MarketConfig,
        traces: HashMap<(Zone, InstanceType), PriceTrace>,
    ) -> Self {
        for t in traces.values() {
            assert_eq!(
                t.horizon(),
                config.horizon_minutes,
                "trace horizon mismatch"
            );
        }
        Market { config, traces }
    }

    /// The market configuration.
    pub fn config(&self) -> &MarketConfig {
        &self.config
    }

    /// The zones trading in this market.
    pub fn zones(&self) -> &[Zone] {
        &self.config.zones
    }

    /// Trace horizon in minutes.
    pub fn horizon(&self) -> u64 {
        self.config.horizon_minutes
    }

    /// The full trace for `(zone, ty)`.
    pub fn trace(&self, zone: Zone, ty: InstanceType) -> &PriceTrace {
        self.traces
            .get(&(zone, ty))
            .unwrap_or_else(|| panic!("no trace for {} {}", zone.name(), ty))
    }

    /// The spot price of `(zone, ty)` at `minute`.
    pub fn price(&self, zone: Zone, ty: InstanceType, minute: u64) -> Price {
        self.trace(zone, ty).price_at(minute)
    }

    /// Whether a spot request with `bid` would be granted at `minute`
    /// (bid at or above the current price).
    pub fn grants(&self, zone: Zone, ty: InstanceType, bid: Price, minute: u64) -> bool {
        bid >= self.price(zone, ty, minute)
    }

    /// The minute at which an instance launched at `from` with `bid` is
    /// out-of-bid terminated (first minute with `price > bid`), or `None`
    /// if it survives to `until`.
    pub fn out_of_bid_at(
        &self,
        zone: Zone,
        ty: InstanceType,
        bid: Price,
        from: u64,
        until: u64,
    ) -> Option<u64> {
        self.trace(zone, ty)
            .first_minute_above(bid, from)
            .filter(|&m| m < until)
    }

    /// Billing for a spot instance lifetime (see [`spot_charge`]).
    pub fn charge(
        &self,
        zone: Zone,
        ty: InstanceType,
        launch: u64,
        end: u64,
        termination: Termination,
    ) -> Price {
        spot_charge(self.trace(zone, ty), launch, end, termination)
    }

    /// Sample a startup delay in minutes for launching in `zone`.
    ///
    /// Deterministic in `(market seed, zone, minute)`; ranges follow
    /// [`crate::topology::Region::startup_range_secs`]. Delays are rounded
    /// up to whole minutes (4–12 typically).
    pub fn startup_delay_minutes(&self, zone: Zone, minute: u64) -> u64 {
        let (lo, hi) = zone.region.startup_range_secs();
        let mut seed = self
            .config
            .seed
            .wrapping_mul(0xA076_1D64_78BD_642F)
            .wrapping_add(zone.ordinal() as u64)
            .wrapping_mul(0xE703_7ED1_A0B4_28DB)
            .wrapping_add(minute);
        seed ^= seed >> 32;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let secs = rng.gen_range(lo..=hi);
        secs.div_ceil(60)
    }

    /// A new market restricted to `[from, to)` minutes (re-based to 0).
    /// Used to split a long history into training and evaluation spans.
    pub fn window(&self, from: u64, to: u64) -> Market {
        let mut config = self.config.clone();
        config.horizon_minutes = to - from;
        let traces = self
            .traces
            .iter()
            .map(|(k, t)| (*k, t.window(from, to)))
            .collect();
        Market { config, traces }
    }

    /// Serialize every trace as JSON — the interchange format for feeding
    /// *real* archived spot-price data into the harness (and for saving a
    /// generated market for external analysis).
    pub fn export_traces(&self) -> String {
        let dump: Vec<(Zone, InstanceType, &PriceTrace)> = {
            let mut v: Vec<_> = self
                .traces
                .iter()
                .map(|((z, t), trace)| (*z, *t, trace))
                .collect();
            v.sort_by_key(|(z, t, _)| (z.ordinal(), *t));
            v
        };
        serde_json::to_string(&dump).expect("traces serialize")
    }

    /// Rebuild a market from [`Market::export_traces`] output. The zone
    /// and type lists of `config` are replaced by what the dump contains;
    /// the horizon must match every trace.
    pub fn import_traces(mut config: MarketConfig, json: &str) -> Result<Market, String> {
        let dump: Vec<(Zone, InstanceType, PriceTrace)> =
            serde_json::from_str(json).map_err(|e| e.to_string())?;
        if dump.is_empty() {
            return Err("empty trace dump".into());
        }
        let horizon = dump[0].2.horizon();
        let mut traces = HashMap::new();
        let mut zones = Vec::new();
        let mut types = Vec::new();
        for (zone, ty, trace) in dump {
            if trace.horizon() != horizon {
                return Err(format!(
                    "horizon mismatch: {} vs {horizon}",
                    trace.horizon()
                ));
            }
            if !zones.contains(&zone) {
                zones.push(zone);
            }
            if !types.contains(&ty) {
                types.push(ty);
            }
            traces.insert((zone, ty), trace);
        }
        config.zones = zones;
        config.types = types;
        config.horizon_minutes = horizon;
        Ok(Market { config, traces })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Region;

    fn small_market() -> Market {
        let mut cfg = MarketConfig::paper(11, 7 * 24 * 60);
        cfg.zones.truncate(4);
        cfg.types = vec![InstanceType::M1Small];
        Market::generate(cfg)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_market();
        let b = small_market();
        for &z in a.zones() {
            assert_eq!(
                a.trace(z, InstanceType::M1Small),
                b.trace(z, InstanceType::M1Small)
            );
        }
    }

    #[test]
    fn grant_semantics() {
        let m = small_market();
        let z = m.zones()[0];
        let p = m.price(z, InstanceType::M1Small, 0);
        assert!(m.grants(z, InstanceType::M1Small, p, 0));
        assert!(!m.grants(z, InstanceType::M1Small, p - Price::TICK, 0));
    }

    #[test]
    fn out_of_bid_is_first_minute_strictly_above() {
        let m = small_market();
        let z = m.zones()[0];
        let t = m.trace(z, InstanceType::M1Small);
        let max = t.max_price_in(0, t.horizon());
        // Bidding the trace max never fails.
        assert_eq!(
            m.out_of_bid_at(z, InstanceType::M1Small, max, 0, t.horizon()),
            None
        );
        // Bidding below the max fails at some minute, and at that minute
        // the price strictly exceeds the bid.
        let bid = max - Price::TICK;
        if let Some(k) = m.out_of_bid_at(z, InstanceType::M1Small, bid, 0, t.horizon()) {
            assert!(t.price_at(k) > bid);
            if k > 0 {
                assert!(t.price_at(k - 1) <= bid || k == 0);
            }
        }
    }

    #[test]
    fn startup_delays_in_range() {
        let m = small_market();
        for &z in m.zones() {
            let (lo, hi) = z.region.startup_range_secs();
            for minute in [0u64, 100, 5_000] {
                let d = m.startup_delay_minutes(z, minute);
                assert!(d >= lo / 60 && d <= hi.div_ceil(60), "{}: {d}", z.name());
            }
        }
    }

    #[test]
    fn windowing_preserves_prices() {
        let m = small_market();
        let w = m.window(1_000, 3_000);
        let z = m.zones()[0];
        for minute in (0..2_000).step_by(97) {
            assert_eq!(
                w.price(z, InstanceType::M1Small, minute),
                m.price(z, InstanceType::M1Small, minute + 1_000)
            );
        }
    }

    #[test]
    fn export_import_round_trip() {
        let m = small_market();
        let json = m.export_traces();
        let cfg = MarketConfig::paper(0, 1); // replaced by the dump
        let re = Market::import_traces(cfg, &json).expect("import");
        assert_eq!(re.horizon(), m.horizon());
        assert_eq!(re.zones(), m.zones());
        for &z in m.zones() {
            assert_eq!(
                re.trace(z, InstanceType::M1Small),
                m.trace(z, InstanceType::M1Small)
            );
        }
        assert!(Market::import_traces(MarketConfig::paper(0, 1), "[]").is_err());
        assert!(Market::import_traces(MarketConfig::paper(0, 1), "nonsense").is_err());
    }

    #[test]
    #[should_panic(expected = "no trace")]
    fn missing_pair_panics() {
        let m = small_market();
        m.price(Zone::new(Region::SaEast1, 1), InstanceType::M1Small, 0);
    }
}
