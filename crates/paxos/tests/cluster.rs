//! End-to-end protocol tests: elections, replication, failover, catch-up,
//! reconfiguration and client semantics on a simulated cluster.

use paxos::{ClientOp, Cluster, LockCmd, LockResp, LockService, ReplicaConfig};
use simnet::{NetworkConfig, NodeId, SimTime};

fn cluster(n: usize, seed: u64) -> Cluster<LockService> {
    Cluster::new(
        n,
        LockService::new(),
        ReplicaConfig::default(),
        NetworkConfig::default(),
        seed,
    )
}

fn acquire(owner: NodeId, name: &str) -> ClientOp<LockCmd> {
    ClientOp::App(LockCmd::Acquire {
        name: name.into(),
        owner,
    })
}

fn release(owner: NodeId, name: &str) -> ClientOp<LockCmd> {
    ClientOp::App(LockCmd::Release {
        name: name.into(),
        owner,
    })
}

fn last_resp(c: &Cluster<LockService>, client: NodeId) -> Option<LockResp> {
    c.replica_hist(client)
}

trait HistExt {
    fn replica_hist(&self, client: NodeId) -> Option<LockResp>;
}

impl HistExt for Cluster<LockService> {
    fn replica_hist(&self, client: NodeId) -> Option<LockResp> {
        self.sim
            .actor(client)
            .and_then(paxos::PaxosNode::as_client)
            .and_then(|c| c.history().last())
            .and_then(|h| h.completed.clone())
            .and_then(|(_, r)| r)
    }
}

#[test]
fn elects_a_leader_and_commits() {
    let mut c = cluster(5, 1);
    let client = c.add_client();
    c.submit(client, acquire(client, "master"));
    assert!(c.run_until_drained(client, SimTime::from_secs(30)));
    assert_eq!(last_resp(&c, client), Some(LockResp::Granted));
    assert!(c.leader().is_some());
    // Every live replica applied the same log.
    let applied = c.assert_log_agreement();
    assert!(applied >= 1);
}

#[test]
fn lock_mutual_exclusion_across_clients() {
    let mut c = cluster(5, 2);
    let c1 = c.add_client();
    let c2 = c.add_client();
    c.submit(c1, acquire(c1, "lease"));
    assert!(c.run_until_drained(c1, SimTime::from_secs(30)));
    c.submit(c2, acquire(c2, "lease"));
    assert!(c.run_until_drained(c2, SimTime::from_secs(30)));
    assert_eq!(last_resp(&c, c1), Some(LockResp::Granted));
    assert_eq!(last_resp(&c, c2), Some(LockResp::Busy { holder: c1 }));
    // Release then re-acquire.
    c.submit(c1, release(c1, "lease"));
    assert!(c.run_until_drained(c1, SimTime::from_secs(30)));
    c.submit(c2, acquire(c2, "lease"));
    assert!(c.run_until_drained(c2, SimTime::from_secs(30)));
    assert_eq!(last_resp(&c, c2), Some(LockResp::Granted));
}

#[test]
fn survives_leader_crash() {
    let mut c = cluster(5, 3);
    let client = c.add_client();
    c.submit(client, acquire(client, "a"));
    assert!(c.run_until_drained(client, SimTime::from_secs(30)));
    let leader = c.leader().expect("leader elected");
    c.crash(leader);
    // The service must keep working with 4 of 5 replicas.
    c.submit(client, acquire(client, "b"));
    assert!(c.run_until_drained(client, SimTime::from_secs(60)));
    assert_eq!(last_resp(&c, client), Some(LockResp::Granted));
    let new_leader = c.leader().expect("new leader elected");
    assert_ne!(new_leader, leader);
    c.assert_log_agreement();
}

#[test]
fn tolerates_two_of_five_failures() {
    let mut c = cluster(5, 4);
    let client = c.add_client();
    c.submit(client, acquire(client, "x"));
    assert!(c.run_until_drained(client, SimTime::from_secs(30)));
    let leader = c.leader().unwrap();
    let victim = c.servers().iter().copied().find(|&s| s != leader).unwrap();
    c.crash(leader);
    c.crash(victim);
    c.submit(client, acquire(client, "y"));
    assert!(
        c.run_until_drained(client, SimTime::from_secs(120)),
        "3 of 5 replicas must still make progress"
    );
    c.assert_log_agreement();
}

#[test]
fn three_of_five_failures_block_progress() {
    let mut c = cluster(5, 5);
    let client = c.add_client();
    c.submit(client, acquire(client, "x"));
    assert!(c.run_until_drained(client, SimTime::from_secs(30)));
    let victims: Vec<NodeId> = c.servers().iter().copied().take(3).collect();
    for v in victims {
        c.crash(v);
    }
    c.submit(client, acquire(client, "y"));
    assert!(
        !c.run_until_drained(client, SimTime::from_secs(30)),
        "a minority must not commit"
    );
}

#[test]
fn restarted_replica_catches_up() {
    let mut c = cluster(3, 6);
    let client = c.add_client();
    c.submit(client, acquire(client, "l1"));
    assert!(c.run_until_drained(client, SimTime::from_secs(30)));
    let victim = c.servers()[0];
    c.crash(victim);
    for name in ["l2", "l3", "l4"] {
        c.submit(client, acquire(client, name));
        assert!(c.run_until_drained(client, SimTime::from_secs(60)));
    }
    let view = c.current_view().unwrap();
    c.restart(victim, LockService::new(), view);
    c.sim.run_until(c.sim.now() + SimTime::from_secs(30));
    let restarted = c.replica(victim).unwrap();
    assert!(
        restarted.commit_index() >= 4,
        "restarted replica should learn the log, commit_index={}",
        restarted.commit_index()
    );
    c.assert_log_agreement();
}

#[test]
fn reconfiguration_replaces_a_replica() {
    let mut c = cluster(5, 7);
    let client = c.add_client();
    c.submit(client, acquire(client, "pre"));
    assert!(c.run_until_drained(client, SimTime::from_secs(30)));

    // Launch a fresh instance, add it, then remove an old one — exactly
    // the replacement flow at a bidding-interval boundary (§4).
    let newcomer = c.spawn_server(LockService::new());
    let outgoing = c
        .servers()
        .iter()
        .copied()
        .find(|&s| Some(s) != c.leader() && s != newcomer)
        .unwrap();
    c.submit(
        client,
        ClientOp::Reconfig {
            add: vec![newcomer],
            remove: vec![outgoing],
        },
    );
    assert!(c.run_until_drained(client, SimTime::from_secs(60)));
    c.refresh_clients();

    let view = c.current_view().unwrap();
    assert!(view.contains(&newcomer), "newcomer in view");
    assert!(!view.contains(&outgoing), "outgoing removed from view");
    assert_eq!(view.len(), 5);

    // The reconfigured service still commits…
    c.submit(client, acquire(client, "post"));
    assert!(c.run_until_drained(client, SimTime::from_secs(60)));
    // …and the newcomer holds the full history.
    c.sim.run_until(c.sim.now() + SimTime::from_secs(10));
    let n = c.replica(newcomer).unwrap();
    assert!(
        n.commit_index() >= 3,
        "newcomer caught up: {}",
        n.commit_index()
    );
    // The removed replica retired itself.
    assert!(c.replica(outgoing).unwrap().is_retired());
}

#[test]
fn client_retransmissions_apply_once() {
    // A harsh network loses ~5% of messages; the client retries, but the
    // acquire/release pairing must still be exactly-once: releasing a lock
    // acquired once must never report NotHeld.
    let mut c = Cluster::new(
        5,
        LockService::new(),
        ReplicaConfig::default(),
        NetworkConfig::harsh(),
        8,
    );
    let client = c.add_client();
    for round in 0..5 {
        c.submit(client, acquire(client, "r"));
        assert!(
            c.run_until_drained(client, SimTime::from_secs(300)),
            "round {round} acquire"
        );
        assert_eq!(last_resp(&c, client), Some(LockResp::Granted));
        c.submit(client, release(client, "r"));
        assert!(
            c.run_until_drained(client, SimTime::from_secs(300)),
            "round {round} release"
        );
        assert_eq!(
            last_resp(&c, client),
            Some(LockResp::Released),
            "round {round}: double-applied acquire or lost release"
        );
    }
    c.assert_log_agreement();
}

#[test]
fn deterministic_replay() {
    let run = |seed| {
        let mut c = cluster(5, seed);
        let client = c.add_client();
        c.submit(client, acquire(client, "d"));
        c.run_until_drained(client, SimTime::from_secs(30));
        (c.sim.now(), c.sim.messages_delivered(), c.leader())
    };
    assert_eq!(run(42), run(42));
}

#[test]
fn single_node_cluster_works() {
    let mut c = cluster(1, 9);
    let client = c.add_client();
    c.submit(client, acquire(client, "solo"));
    assert!(c.run_until_drained(client, SimTime::from_secs(30)));
    assert_eq!(last_resp(&c, client), Some(LockResp::Granted));
}

#[test]
fn log_compaction_and_snapshot_catchup() {
    // Aggressive compaction: snapshot every 4 applied slots.
    let cfg = ReplicaConfig {
        compact_after: Some(4),
        ..ReplicaConfig::default()
    };
    let mut c = Cluster::new(3, LockService::new(), cfg, NetworkConfig::default(), 21);
    let client = c.add_client();

    // Crash a follower early so it misses compacted history.
    c.submit(client, acquire(client, "k0"));
    assert!(c.run_until_drained(client, SimTime::from_secs(30)));
    let victim = c
        .servers()
        .iter()
        .copied()
        .find(|&s| Some(s) != c.leader())
        .unwrap();
    c.crash(victim);

    for i in 1..12 {
        c.submit(client, acquire(client, &format!("k{i}")));
        assert!(
            c.run_until_drained(client, SimTime::from_secs(60)),
            "op {i}"
        );
    }
    // The live replicas compacted well past the victim's log.
    let leader = c.leader().unwrap();
    assert!(
        c.replica(leader).unwrap().compaction_floor() >= 4,
        "floor {}",
        c.replica(leader).unwrap().compaction_floor()
    );

    // Restart: the victim must recover through a snapshot, not the log.
    let view = c.current_view().unwrap();
    c.restart(victim, LockService::new(), view);
    c.sim.run_until(c.sim.now() + SimTime::from_secs(30));
    let r = c.replica(victim).unwrap();
    assert!(r.commit_index() >= 12, "commit_index {}", r.commit_index());
    assert_eq!(
        r.state_machine().held_count(),
        12,
        "snapshot carried the locks"
    );

    // And the service still works.
    c.submit(client, acquire(client, "post"));
    assert!(c.run_until_drained(client, SimTime::from_secs(60)));
}

#[test]
fn joiner_after_compaction_gets_snapshot() {
    let cfg = ReplicaConfig {
        compact_after: Some(4),
        ..ReplicaConfig::default()
    };
    let mut c = Cluster::new(3, LockService::new(), cfg, NetworkConfig::default(), 22);
    let client = c.add_client();
    for i in 0..10 {
        c.submit(client, acquire(client, &format!("pre{i}")));
        assert!(
            c.run_until_drained(client, SimTime::from_secs(60)),
            "op {i}"
        );
    }
    let newcomer = c.spawn_server(LockService::new());
    let outgoing = c
        .servers()
        .iter()
        .copied()
        .find(|&s| Some(s) != c.leader() && s != newcomer)
        .unwrap();
    c.submit(
        client,
        ClientOp::Reconfig {
            add: vec![newcomer],
            remove: vec![outgoing],
        },
    );
    assert!(c.run_until_drained(client, SimTime::from_secs(120)));
    c.refresh_clients();
    c.sim.run_until(c.sim.now() + SimTime::from_secs(20));
    let n = c.replica(newcomer).unwrap();
    assert!(
        n.commit_index() >= 10,
        "newcomer commit {}",
        n.commit_index()
    );
    assert_eq!(
        n.state_machine().held_count(),
        10,
        "joiner received the compacted state"
    );
}

#[test]
fn partition_minority_cannot_commit_majority_can() {
    let mut c = cluster(5, 10);
    let client = c.add_client();
    c.submit(client, acquire(client, "p0"));
    assert!(c.run_until_drained(client, SimTime::from_secs(30)));

    let servers = c.servers().to_vec();
    let minority = vec![servers[0], servers[1]];
    let mut majority = vec![servers[2], servers[3], servers[4]];
    // The client must sit with the majority to observe commits.
    majority.push(client);
    c.sim.partition(vec![minority.clone(), majority]);

    c.submit(client, acquire(client, "p1"));
    assert!(
        c.run_until_drained(client, SimTime::from_secs(120)),
        "majority side must commit"
    );
    c.sim.heal();
    c.sim.run_until(c.sim.now() + SimTime::from_secs(30));
    c.assert_log_agreement();
}

#[test]
fn observability_captures_consensus_activity() {
    let (o, _clock) = obs::Obs::simulated();
    let cfg = ReplicaConfig {
        obs: o.clone(),
        ..ReplicaConfig::default()
    };
    let mut c = Cluster::new(3, LockService::new(), cfg, NetworkConfig::default(), 77);
    let client = c.add_client();
    c.submit(client, acquire(client, "obs"));
    assert!(c.run_until_drained(client, SimTime::from_secs(30)));
    assert_eq!(last_resp(&c, client), Some(LockResp::Granted));

    let snap = o.metrics.snapshot();
    // Becoming leader and committing a command exercises both phases.
    assert!(snap.counter("paxos.elections_started").unwrap_or(0) >= 1);
    assert!(snap.counter("paxos.leadership_acquired").unwrap_or(0) >= 1);
    assert!(snap.counter("paxos.msg_sent.prepare").unwrap_or(0) >= 2);
    assert!(snap.counter("paxos.msg_recv.promise").unwrap_or(0) >= 1);
    assert!(snap.counter("paxos.msg_sent.accept").unwrap_or(0) >= 2);
    assert!(snap.counter("paxos.msg_recv.accepted").unwrap_or(0) >= 1);
    assert!(snap.counter_family("paxos.msg_sent.") > 0);
    assert!(snap.histogram("paxos.phase2_micros").map_or(0, |h| h.count) >= 1);

    // The trace carries election and quorum-wait spans in sim time.
    let events = o.trace.events();
    assert!(events.iter().any(|e| e.name == "paxos.election"));
    assert!(events.iter().any(|e| e.name == "paxos.quorum_wait"));
}
