//! The mid-interval repair controller, side by side with the paper's
//! fixed-interval baseline: replay the same kill-prone lock-service
//! deployment with repair off, with spot-only reactive rebids, and with
//! the hybrid policy that escalates to on-demand fallbacks when the spot
//! market cannot refill the quorum.
//!
//! Boundary decisions come from the same frozen per-zone kernels in every
//! cell, so the three rows differ only in what happens *between*
//! boundaries: out-of-bid kills either stand until the next boundary
//! (off), are answered with backoff-paced rebids (reactive), or are
//! topped up from on-demand (hybrid). The printout shows the controller's
//! ledger — degraded minutes, rebids, backoff waits, on-demand minutes —
//! next to the cost/availability outcome.
//!
//! ```text
//! cargo run --release --example repair_controller
//! ```

use spot_jupiter::jupiter::{ExtraStrategy, ServiceSpec};
use spot_jupiter::obs::Obs;
use spot_jupiter::replay::scenario::{Scenario, SweepSpec};
use spot_jupiter::replay::RepairConfig;
use spot_jupiter::spot_market::{InstanceType, Market, MarketConfig};

fn main() {
    // 3 training weeks + 2 evaluation weeks, 10 zones. The razor-thin
    // Extra(0, 0.02) margin bids barely above the spot price, so
    // mid-interval kills are plentiful — the regime repair exists for.
    let train = 3 * 7 * 24 * 60;
    let eval = 2 * 7 * 24 * 60;
    let mut cfg = MarketConfig::paper(2015, train + eval);
    cfg.zones.truncate(10);
    cfg.types = vec![InstanceType::M1Small];
    let market = Market::generate(cfg);
    let spec = ServiceSpec::lock_service();

    let (obs, _clock) = Obs::simulated();
    let scenario = Scenario::new(market, train, train + eval).with_obs(obs.clone());
    let interval_hours = 6u64;
    let sweep = SweepSpec::new(spec.clone())
        .strategy(|_| Box::new(ExtraStrategy::new(0, 0.02)))
        .intervals(vec![interval_hours])
        .repairs(vec![
            RepairConfig::off(),
            RepairConfig::reactive(),
            RepairConfig::hybrid(),
        ]);

    println!(
        "lock service, 2 evaluated weeks, {interval_hours} h interval, {} zones, \
         thin-margin Extra(0, 0.02) bids\n",
        scenario.market().zones().len()
    );
    println!(
        "{:<10} {:>10} {:>11} {:>13} {:>10} {:>7}",
        "repair", "cost ($)", "od cost ($)", "availability", "degraded", "kills"
    );
    let cells = scenario.run(&sweep);
    for cell in &cells {
        let r = &cell.result;
        println!(
            "{:<10} {:>10.2} {:>11.2} {:>13.6} {:>8} m {:>7}",
            cell.repair.label(),
            r.total_cost.as_dollars(),
            r.on_demand_cost.as_dollars(),
            r.availability(),
            r.degraded_minutes,
            r.total_kills()
        );
    }

    let baseline = scenario.baseline_cost(&spec);
    println!("\non-demand baseline: ${:.2}", baseline.as_dollars());

    // The controller's ledger, from the hybrid cell's merged registry.
    let snap = obs.metrics.snapshot();
    let counter = |name: &str| {
        snap.counter(&format!(
            "cell.Extra(0,0.02).{interval_hours}h.hybrid.{name}"
        ))
        .unwrap_or(0)
    };
    println!("\nhybrid controller ledger:");
    println!("  deaths detected     {:>6}", counter("repair.deaths_detected"));
    println!("  rebids issued       {:>6}", counter("repair.rebids"));
    println!("  spot replacements   {:>6}", counter("repair.spot_replacements"));
    println!("  backoff waits       {:>6}", counter("repair.backoff_waits"));
    println!("  on-demand launches  {:>6}", counter("repair.on_demand_launches"));
    println!("  on-demand minutes   {:>6}", counter("repair.on_demand_minutes"));
    println!("  too late to repair  {:>6}", counter("repair.too_late"));

    let off = &cells[0].result;
    let hybrid = &cells[2].result;
    println!(
        "\nrepair shrank degraded time {} -> {} minutes at ${:.2} extra cost \
         (baseline would cost ${:.2})",
        off.degraded_minutes,
        hybrid.degraded_minutes,
        (hybrid.total_cost - off.total_cost).as_dollars(),
        baseline.as_dollars()
    );
}
