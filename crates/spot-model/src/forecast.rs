//! Forward evolution of the semi-Markov price process.
//!
//! Starting from the current price *and the time already spent at it*
//! (the semi-Markov state), evolve the joint distribution over
//! (price level, sojourn age) minute by minute across the next bidding
//! interval. Two summaries are exposed:
//!
//! * [`forecast`] — for every price level `s_l`, the average over the
//!   horizon of `P(price > s_l)`. This is the discretized Eq. 5: the
//!   expected fraction of the interval an instance bidding `b` spends
//!   out-of-bid, evaluated lazily for any `b` via
//!   [`Forecast::out_of_bid_fraction`]. Computing all levels at once makes
//!   the bidding algorithm's minimum-bid search O(levels) per zone instead
//!   of one evolution per candidate bid.
//! * [`survival_probability`] — the *absorbing* variant: the probability
//!   that the price never exceeds the bid during the horizon (the instance
//!   survives the whole interval). The paper's availability accounting is
//!   per-time-unit, so its Eq. 5 uses the expectation form; the absorbing
//!   form is kept for the ablation study.

use spot_market::Price;

use crate::kernel::FrozenKernel;

/// Tuning knobs for the forward evolution.
#[derive(Clone, Copy, Debug)]
pub struct ForecastConfig {
    /// Number of sojourn-age buckets tracked exactly; ages beyond this are
    /// collapsed into the last bucket (where the kernel's geometric-tail
    /// hazard applies). 180 minutes covers the ages that matter for the
    /// bidding intervals evaluated (1–12 h) at modest cost.
    pub max_age: usize,
}

impl Default for ForecastConfig {
    fn default() -> Self {
        ForecastConfig { max_age: 180 }
    }
}

/// The per-level out-of-bid summary of one forward evolution.
#[derive(Clone, Debug)]
pub struct Forecast {
    /// The kernel's price levels (sorted ascending).
    level_prices: Vec<Price>,
    /// `above_fraction[l]` = average over the horizon of
    /// `P(price > level_prices[l])`.
    above_fraction: Vec<f64>,
    /// Horizon in minutes this forecast covers.
    horizon: u32,
}

impl Forecast {
    /// Average fraction of the horizon with `price > bid` — the
    /// out-of-bid failure probability of Eq. 5 before composition with the
    /// on-demand failure floor.
    pub fn out_of_bid_fraction(&self, bid: Price) -> f64 {
        // Prices live on the level ladder, so P(price > bid) equals
        // P(price > s_l) for the largest level s_l ≤ bid; a bid below the
        // lowest level is always out-of-bid.
        let idx = self.level_prices.partition_point(|&p| p <= bid);
        match idx.checked_sub(1) {
            None => 1.0,
            Some(l) => self.above_fraction[l],
        }
    }

    /// The horizon in minutes.
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// The price levels the forecast is resolved on.
    pub fn levels(&self) -> &[Price] {
        &self.level_prices
    }
}

/// Precomputed per-state hazard and next-state tables for the evolution.
///
/// Most (state, age) cells transition according to the state's *marginal*
/// next-state distribution (exact-sojourn conditionals need ≥ 3
/// observations at that exact age), so the per-minute step accumulates
/// each state's marginal transition mass once and distributes it with a
/// single O(n²) pass instead of O(n² · max_age) — the difference between
/// seconds and minutes on month-long forecast horizons.
struct Tables {
    n: usize,
    max_age: usize,
    /// `hazard[i][a]` = P(leave state i during the minute that takes its
    /// age from a to a+1), for a in `0..max_age`.
    hazard: Vec<Vec<f64>>,
    /// Exact-sojourn conditionals, only where well supported.
    exact: Vec<Vec<Option<Vec<f64>>>>,
    /// Marginal next-state distribution per state.
    marginal: Vec<Vec<f64>>,
}

impl Tables {
    fn build(kernel: &FrozenKernel, max_age: usize) -> Tables {
        let n = kernel.n_states();
        let hazard = (0..n as u16)
            .map(|i| kernel.hazards_up_to(i, max_age))
            .collect();
        let exact = (0..n as u16)
            .map(|i| {
                (0..max_age)
                    .map(|a| kernel.exact_next_state_dist(i, a as u32 + 1))
                    .collect()
            })
            .collect();
        let marginal = (0..n as u16)
            .map(|i| kernel.marginal_next_state_dist(i))
            .collect();
        Tables {
            n,
            max_age,
            hazard,
            exact,
            marginal,
        }
    }
}

/// Evolve the (state, age) distribution one minute. `mass` is indexed
/// `[state][age]`; `scratch` is the same shape and is overwritten.
fn step(tables: &Tables, mass: &mut Vec<Vec<f64>>, scratch: &mut Vec<Vec<f64>>) {
    for row in scratch.iter_mut() {
        row.iter_mut().for_each(|x| *x = 0.0);
    }
    let top = tables.max_age - 1;
    for i in 0..tables.n {
        // Transition mass leaving state i under the marginal distribution.
        let mut marginal_out = 0.0;
        for a in 0..tables.max_age {
            let w = mass[i][a];
            if w == 0.0 {
                continue;
            }
            let h = tables.hazard[i][a];
            if h > 0.0 {
                let hw = h * w;
                match &tables.exact[i][a] {
                    Some(dist) => {
                        for (j, &pj) in dist.iter().enumerate() {
                            if pj > 0.0 {
                                scratch[j][0] += hw * pj;
                            }
                        }
                    }
                    None => marginal_out += hw,
                }
            }
            scratch[i][(a + 1).min(top)] += (1.0 - h) * w;
        }
        if marginal_out > 0.0 {
            for (j, &pj) in tables.marginal[i].iter().enumerate() {
                if pj > 0.0 {
                    scratch[j][0] += marginal_out * pj;
                }
            }
        }
    }
    std::mem::swap(mass, scratch);
}

/// Run the forward evolution for `horizon` minutes from
/// `(start_state, start_age)` and summarize per-level out-of-bid
/// fractions.
pub fn forecast(
    kernel: &FrozenKernel,
    start_state: u16,
    start_age: u32,
    horizon: u32,
    config: ForecastConfig,
) -> Forecast {
    let n = kernel.n_states();
    assert!(n > 0, "cannot forecast from an empty kernel");
    assert!((start_state as usize) < n, "start state out of range");
    assert!(horizon > 0, "horizon must be positive");
    let max_age = config.max_age.max(2);
    let tables = Tables::build(kernel, max_age);

    let mut mass = vec![vec![0.0f64; max_age]; n];
    let mut scratch = mass.clone();
    mass[start_state as usize][(start_age as usize).min(max_age - 1)] = 1.0;

    let mut above_sum = vec![0.0f64; n];
    for _ in 0..horizon {
        step(&tables, &mut mass, &mut scratch);
        // P(price > s_l) = Σ_{i > l} Σ_a mass[i][a]; build via suffix sums.
        let mut suffix = 0.0;
        for l in (0..n).rev() {
            // above level l means strictly higher states.
            above_sum[l] += suffix;
            suffix += mass[l].iter().sum::<f64>();
        }
    }
    let above_fraction = above_sum
        .iter()
        .map(|&s| (s / horizon as f64).clamp(0.0, 1.0))
        .collect();
    Forecast {
        level_prices: kernel.prices().to_vec(),
        above_fraction,
        horizon,
    }
}

/// Absorbing variant: probability that the price stays ≤ `bid` for the
/// entire horizon (the instance survives out-of-bid termination).
pub fn survival_probability(
    kernel: &FrozenKernel,
    bid: Price,
    start_state: u16,
    start_age: u32,
    horizon: u32,
    config: ForecastConfig,
) -> f64 {
    let n = kernel.n_states();
    assert!(n > 0, "cannot forecast from an empty kernel");
    assert!((start_state as usize) < n, "start state out of range");
    if kernel.prices()[start_state as usize] > bid {
        return 0.0; // already out of bid
    }
    let max_age = config.max_age.max(2);
    let tables = Tables::build(kernel, max_age);
    let alive_states = kernel.prices().partition_point(|&p| p <= bid);

    let mut mass = vec![vec![0.0f64; max_age]; n];
    let mut scratch = mass.clone();
    mass[start_state as usize][(start_age as usize).min(max_age - 1)] = 1.0;

    for _ in 0..horizon {
        step(&tables, &mut mass, &mut scratch);
        // Absorb (remove) mass that crossed above the bid.
        for row in mass.iter_mut().skip(alive_states) {
            row.iter_mut().for_each(|x| *x = 0.0);
        }
    }
    mass.iter()
        .take(alive_states)
        .map(|row| row.iter().sum::<f64>())
        .sum::<f64>()
        .clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spot_market::{PricePoint, PriceTrace};

    fn p(d: f64) -> Price {
        Price::from_dollars(d)
    }

    /// Deterministic alternation A(5) → B(3) → A(5) → …
    fn kernel() -> FrozenKernel {
        let mut points = Vec::new();
        let mut t = 0;
        for _ in 0..50 {
            points.push(PricePoint {
                minute: t,
                price: p(0.01),
            });
            t += 5;
            points.push(PricePoint {
                minute: t,
                price: p(0.02),
            });
            t += 3;
        }
        FrozenKernel::from_trace(&PriceTrace::new(points, t))
    }

    #[test]
    fn high_bid_never_out_of_bid() {
        let k = kernel();
        let f = forecast(&k, 0, 0, 60, ForecastConfig::default());
        assert_eq!(f.out_of_bid_fraction(p(0.02)), 0.0);
        assert_eq!(f.out_of_bid_fraction(p(0.5)), 0.0);
    }

    #[test]
    fn low_bid_always_out_of_bid() {
        let k = kernel();
        let f = forecast(&k, 0, 0, 60, ForecastConfig::default());
        assert_eq!(f.out_of_bid_fraction(p(0.005)), 1.0);
    }

    #[test]
    fn mid_bid_matches_duty_cycle() {
        // Bidding 0.01 survives the A segments (5 of every 8 minutes).
        let k = kernel();
        let f = forecast(&k, 0, 0, 480, ForecastConfig::default());
        let frac = f.out_of_bid_fraction(p(0.01));
        assert!((frac - 3.0 / 8.0).abs() < 0.05, "got {frac}");
    }

    #[test]
    fn forecast_conditions_on_age() {
        // At age 4 of a 5-minute A sojourn, a transition to B is imminent;
        // at age 0 it is 5 minutes away. Short-horizon OOB must differ.
        let k = kernel();
        let fresh = forecast(&k, 0, 0, 3, ForecastConfig::default());
        let stale = forecast(&k, 0, 4, 3, ForecastConfig::default());
        assert!(
            stale.out_of_bid_fraction(p(0.01)) > fresh.out_of_bid_fraction(p(0.01)) + 0.2,
            "stale {} vs fresh {}",
            stale.out_of_bid_fraction(p(0.01)),
            fresh.out_of_bid_fraction(p(0.01))
        );
    }

    #[test]
    fn mass_is_conserved() {
        let k = kernel();
        let cfg = ForecastConfig { max_age: 16 };
        let tables = Tables::build(&k, cfg.max_age);
        let mut mass = vec![vec![0.0; cfg.max_age]; k.n_states()];
        let mut scratch = mass.clone();
        mass[0][0] = 1.0;
        for _ in 0..200 {
            step(&tables, &mut mass, &mut scratch);
            let total: f64 = mass.iter().flat_map(|r| r.iter()).sum();
            assert!((total - 1.0).abs() < 1e-9, "mass leaked: {total}");
        }
    }

    #[test]
    fn survival_deterministic_chain() {
        let k = kernel();
        // Starting fresh at A with bid 0.01: the price hits B within 5
        // minutes, so 8-minute survival is ~0.
        let s = survival_probability(&k, p(0.01), 0, 0, 8, ForecastConfig::default());
        assert!(s < 0.05, "got {s}");
        // Bid 0.02 survives forever.
        let s = survival_probability(&k, p(0.02), 0, 0, 500, ForecastConfig::default());
        assert!(s > 0.999, "got {s}");
        // Starting above the bid is instant death.
        let s = survival_probability(&k, p(0.01), 1, 0, 10, ForecastConfig::default());
        assert_eq!(s, 0.0);
    }

    #[test]
    fn survival_never_exceeds_expectation_based_alive_fraction() {
        // P(alive all horizon) ≤ average P(alive at t).
        let k = kernel();
        for horizon in [5u32, 20, 60] {
            let f = forecast(&k, 0, 0, horizon, ForecastConfig::default());
            let s = survival_probability(&k, p(0.01), 0, 0, horizon, ForecastConfig::default());
            let avg_alive = 1.0 - f.out_of_bid_fraction(p(0.01));
            assert!(
                s <= avg_alive + 1e-9,
                "h={horizon}: survival {s} > avg alive {avg_alive}"
            );
        }
    }

    #[test]
    fn out_of_bid_fraction_is_monotone_in_bid() {
        let k = kernel();
        let f = forecast(&k, 0, 2, 120, ForecastConfig::default());
        let mut last = 1.1;
        for bid_micro in (1_000..30_000).step_by(1_000) {
            let frac = f.out_of_bid_fraction(Price::from_micros(bid_micro));
            assert!(frac <= last + 1e-12);
            last = frac;
        }
    }
}
