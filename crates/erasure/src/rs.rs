//! Systematic Reed–Solomon θ(m, n): `m` data shards, `n − m` parity
//! shards, any `m` shards reconstruct (§5.1.2 denotes this θ(m, n); the
//! storage service uses θ(3, 5)).
//!
//! The encoding matrix is the n×m Vandermonde matrix normalized by the
//! inverse of its top m×m block, which makes the code *systematic* (the
//! first `m` output shards are the data itself) while preserving the
//! any-m-rows-invertible property.

use bytes::Bytes;

use crate::gf256::mul_acc_slice;
use crate::matrix::Matrix;

/// Errors from encoding / reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErasureError {
    /// Fewer than `m` shards were available.
    NotEnoughShards {
        /// Shards required (m).
        needed: usize,
        /// Shards present.
        have: usize,
    },
    /// Shards disagree on length.
    ShardSizeMismatch,
    /// The framed object is corrupt (bad length header).
    CorruptObject,
}

impl std::fmt::Display for ErasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErasureError::NotEnoughShards { needed, have } => {
                write!(f, "need {needed} shards, have {have}")
            }
            ErasureError::ShardSizeMismatch => write!(f, "shard sizes differ"),
            ErasureError::CorruptObject => write!(f, "corrupt object framing"),
        }
    }
}

impl std::error::Error for ErasureError {}

/// A θ(m, n) systematic Reed–Solomon codec.
///
/// ```
/// use erasure::ReedSolomon;
///
/// // The paper's storage configuration: 3 data shards, 2 parity.
/// let rs = ReedSolomon::new(3, 5);
/// let shards = rs.encode_object(b"replicate me cheaply");
///
/// // Lose any two shards; the object still reconstructs.
/// let partial: Vec<Option<Vec<u8>>> = shards
///     .iter()
///     .enumerate()
///     .map(|(i, s)| (i != 0 && i != 3).then(|| s.to_vec()))
///     .collect();
/// assert_eq!(rs.decode_object(&partial).unwrap(), b"replicate me cheaply");
/// ```
#[derive(Clone, Debug)]
pub struct ReedSolomon {
    m: usize,
    n: usize,
    /// The full n×m encoding matrix (top m rows are the identity).
    encode_matrix: Matrix,
}

impl ReedSolomon {
    /// Build a θ(m, n) codec. Requires `1 ≤ m ≤ n ≤ 256`.
    pub fn new(m: usize, n: usize) -> Self {
        assert!(m >= 1 && m <= n && n <= 256, "invalid θ({m}, {n})");
        let v = Matrix::vandermonde(n, m);
        let top_inv = v
            .select_rows(&(0..m).collect::<Vec<_>>())
            .inverse()
            .expect("vandermonde top block invertible");
        let encode_matrix = v.mul(&top_inv);
        ReedSolomon {
            m,
            n,
            encode_matrix,
        }
    }

    /// Data shards `m`.
    pub fn data_shards(&self) -> usize {
        self.m
    }

    /// Total shards `n`.
    pub fn total_shards(&self) -> usize {
        self.n
    }

    /// Parity shards `n − m`.
    pub fn parity_shards(&self) -> usize {
        self.n - self.m
    }

    /// Encode `m` equal-length data shards into `n` shards (the first `m`
    /// are the data, verbatim).
    pub fn encode(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, ErasureError> {
        if data.len() != self.m {
            return Err(ErasureError::NotEnoughShards {
                needed: self.m,
                have: data.len(),
            });
        }
        let len = data[0].len();
        if data.iter().any(|d| d.len() != len) {
            return Err(ErasureError::ShardSizeMismatch);
        }
        let mut shards: Vec<Vec<u8>> = data.to_vec();
        for r in self.m..self.n {
            let mut parity = vec![0u8; len];
            for (c, d) in data.iter().enumerate() {
                mul_acc_slice(&mut parity, d, self.encode_matrix[(r, c)]);
            }
            shards.push(parity);
        }
        Ok(shards)
    }

    /// Reconstruct the `m` data shards from any `m` (or more) survivors.
    /// `shards[i]` is `Some` iff shard `i` survived.
    pub fn reconstruct(&self, shards: &[Option<Vec<u8>>]) -> Result<Vec<Vec<u8>>, ErasureError> {
        assert_eq!(shards.len(), self.n, "expected {} shard slots", self.n);
        let present: Vec<usize> = shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
            .collect();
        if present.len() < self.m {
            return Err(ErasureError::NotEnoughShards {
                needed: self.m,
                have: present.len(),
            });
        }
        let len = shards[present[0]].as_ref().expect("present").len();
        for &i in &present {
            if shards[i].as_ref().expect("present").len() != len {
                return Err(ErasureError::ShardSizeMismatch);
            }
        }
        // Fast path: all data shards survived.
        if present.iter().take_while(|&&i| i < self.m).count() >= self.m {
            return Ok(shards[..self.m]
                .iter()
                .map(|s| s.as_ref().expect("present").clone())
                .collect());
        }
        // Solve: rows of the encode matrix for m survivors, inverted.
        let rows: Vec<usize> = present.iter().copied().take(self.m).collect();
        let sub = self.encode_matrix.select_rows(&rows);
        let inv = sub
            .inverse()
            .expect("any m rows of a normalized Vandermonde are independent");
        let mut data = Vec::with_capacity(self.m);
        for r in 0..self.m {
            let mut out = vec![0u8; len];
            for (c, &row_idx) in rows.iter().enumerate() {
                let shard = shards[row_idx].as_ref().expect("present");
                mul_acc_slice(&mut out, shard, inv[(r, c)]);
            }
            data.push(out);
        }
        Ok(data)
    }

    /// Encode an arbitrary byte object: frames it with a u64 length
    /// header, pads to a multiple of `m`, splits into `m` data shards and
    /// encodes. The per-shard overhead is `⌈(len+8)/m⌉ − len/m` bytes.
    pub fn encode_object(&self, object: &[u8]) -> Vec<Bytes> {
        let mut framed = Vec::with_capacity(8 + object.len());
        framed.extend_from_slice(&(object.len() as u64).to_le_bytes());
        framed.extend_from_slice(object);
        let shard_len = framed.len().div_ceil(self.m).max(1);
        framed.resize(shard_len * self.m, 0);
        let data: Vec<Vec<u8>> = framed.chunks(shard_len).map(<[u8]>::to_vec).collect();
        self.encode(&data)
            .expect("framed shards are well-formed")
            .into_iter()
            .map(Bytes::from)
            .collect()
    }

    /// Reassemble an object encoded by [`ReedSolomon::encode_object`] from
    /// any `m` surviving shards.
    pub fn decode_object(&self, shards: &[Option<Vec<u8>>]) -> Result<Vec<u8>, ErasureError> {
        let data = self.reconstruct(shards)?;
        let mut framed = Vec::with_capacity(data.len() * data[0].len());
        for d in data {
            framed.extend_from_slice(&d);
        }
        if framed.len() < 8 {
            return Err(ErasureError::CorruptObject);
        }
        let len = u64::from_le_bytes(framed[..8].try_into().expect("8 bytes")) as usize;
        if len > framed.len() - 8 {
            return Err(ErasureError::CorruptObject);
        }
        framed.drain(..8);
        framed.truncate(len);
        Ok(framed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shards_of(rs: &ReedSolomon, seed: u8, len: usize) -> Vec<Vec<u8>> {
        (0..rs.data_shards())
            .map(|i| {
                (0..len)
                    .map(|j| (seed as usize + i * 31 + j * 7) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn systematic_encoding() {
        let rs = ReedSolomon::new(3, 5);
        let data = shards_of(&rs, 1, 64);
        let shards = rs.encode(&data).unwrap();
        assert_eq!(shards.len(), 5);
        assert_eq!(&shards[..3], &data[..]);
    }

    #[test]
    fn reconstruct_from_every_three_of_five() {
        let rs = ReedSolomon::new(3, 5);
        let data = shards_of(&rs, 9, 128);
        let shards = rs.encode(&data).unwrap();
        // All C(5,3) = 10 survivor sets.
        for a in 0..5 {
            for b in a + 1..5 {
                for c in b + 1..5 {
                    let mut partial: Vec<Option<Vec<u8>>> = vec![None; 5];
                    for &i in &[a, b, c] {
                        partial[i] = Some(shards[i].clone());
                    }
                    let rec = rs.reconstruct(&partial).unwrap();
                    assert_eq!(rec, data, "survivors {a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn two_of_five_is_not_enough() {
        let rs = ReedSolomon::new(3, 5);
        let shards = rs.encode(&shards_of(&rs, 2, 32)).unwrap();
        let mut partial: Vec<Option<Vec<u8>>> = vec![None; 5];
        partial[0] = Some(shards[0].clone());
        partial[4] = Some(shards[4].clone());
        assert_eq!(
            rs.reconstruct(&partial),
            Err(ErasureError::NotEnoughShards { needed: 3, have: 2 })
        );
    }

    #[test]
    fn mismatched_shard_lengths_rejected() {
        let rs = ReedSolomon::new(2, 4);
        let data = vec![vec![1, 2, 3], vec![4, 5]];
        assert_eq!(rs.encode(&data), Err(ErasureError::ShardSizeMismatch));
    }

    #[test]
    fn object_round_trip_various_sizes() {
        let rs = ReedSolomon::new(3, 5);
        for size in [0usize, 1, 7, 8, 9, 24, 100, 1024, 4097] {
            let object: Vec<u8> = (0..size).map(|i| (i * 131) as u8).collect();
            let shards = rs.encode_object(&object);
            assert_eq!(shards.len(), 5);
            // Lose shards 1 and 3.
            let partial: Vec<Option<Vec<u8>>> = shards
                .iter()
                .enumerate()
                .map(|(i, s)| (i != 1 && i != 3).then(|| s.to_vec()))
                .collect();
            let decoded = rs.decode_object(&partial).unwrap();
            assert_eq!(decoded, object, "size {size}");
        }
    }

    #[test]
    fn replication_degenerate_code() {
        // θ(1, 3) is plain 3-way replication.
        let rs = ReedSolomon::new(1, 3);
        let object = b"lock-service-state".to_vec();
        let shards = rs.encode_object(&object);
        for keep in 0..3 {
            let partial: Vec<Option<Vec<u8>>> = (0..3)
                .map(|i| (i == keep).then(|| shards[i].to_vec()))
                .collect();
            assert_eq!(rs.decode_object(&partial).unwrap(), object);
        }
    }

    #[test]
    fn wide_code_works() {
        let rs = ReedSolomon::new(10, 14);
        let object: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let shards = rs.encode_object(&object);
        let partial: Vec<Option<Vec<u8>>> = shards
            .iter()
            .enumerate()
            .map(|(i, s)| (i % 3 != 1 || i >= 6).then(|| s.to_vec()))
            .collect();
        assert!(partial.iter().filter(|s| s.is_some()).count() >= 10);
        assert_eq!(rs.decode_object(&partial).unwrap(), object);
    }

    #[test]
    fn corrupt_length_header_detected() {
        let rs = ReedSolomon::new(2, 3);
        let shards = rs.encode_object(b"hello");
        let mut partial: Vec<Option<Vec<u8>>> = shards.iter().map(|s| Some(s.to_vec())).collect();
        // Clobber the low byte of the length header, inflating the length
        // far beyond the payload.
        partial[0].as_mut().unwrap()[0] = 0xFF;
        partial[0].as_mut().unwrap()[1] = 0xFF;
        assert_eq!(rs.decode_object(&partial), Err(ErasureError::CorruptObject));
    }

    #[test]
    fn storage_savings_vs_replication() {
        // The RS-Paxos motivation: θ(3,5) ships 5 shards of ~len/3 instead
        // of 5 full copies — a ~3× network/storage saving.
        let rs = ReedSolomon::new(3, 5);
        let object = vec![0xABu8; 3 * 1024];
        let shards = rs.encode_object(&object);
        let total: usize = shards.iter().map(|s| s.len()).sum();
        assert!(total < 2 * object.len(), "total {total}");
    }
}
