//! The chaos suite: hundreds of seeded fault schedules — crashes,
//! restarts, partitions, link chaos, clock skew — against the live lock
//! and storage services, with every run checked for safety.
//!
//! * Default counts keep the whole suite inside the CI budget; raise them
//!   with `CHAOS_SCHEDULES=<n>` for soak runs (the count applies to each
//!   sweep function).
//! * A failing run shrinks its schedule to the minimal failing prefix and
//!   panics with the seed, the pretty-printed schedule, an obs trace of
//!   the minimal run, and the exact command to reproduce it:
//!   `CHAOS_SEED=0x… CHAOS_SCHEDULES=1 cargo test -q --test chaos <name>`.
//! * Reproduction is byte-for-byte: the same schedule always yields the
//!   same simulator fingerprint (asserted below).

use spot_jupiter::jupiter::{ExtraStrategy, ModelStore, ServiceSpec};
use spot_jupiter::obs::{AuditKind, Obs};
use spot_jupiter::replay::lifecycle::{
    on_demand_baseline_cost, replay_repair_stored, replay_strategy,
};
use spot_jupiter::replay::{capacity_fault_schedule, market_fault_schedule, RepairConfig, ReplayConfig};
use spot_jupiter::simnet::{ChaosAction, ChaosEvent, ChaosPlan, ChaosSchedule, SimTime};
use spot_jupiter::spot_market::BidEra;
use test_util::{
    chaos_schedules, chaos_seed, derive_seed, quick_market, repair_pair, run_lock_chaos,
    run_lock_chaos_batched, run_storage_chaos, run_storage_chaos_batched, shrink_and_report,
    ChaosOutcome,
};

/// Default per-sweep schedule counts: two plain lock sweeps (30 each),
/// two batched lock sweeps (25 each), two storage sweeps (20 each) and
/// the capacity-driven migration sweep (50) give the ≥200-schedule
/// baseline the suite promises, with a dedicated 50-schedule slice
/// through the proactive-migration path.
const LOCK_SWEEP_DEFAULT: usize = 30;
const LOCK_BATCHED_DEFAULT: usize = 25;
const STORAGE_SWEEP_DEFAULT: usize = 20;
const MIGRATION_SWEEP_DEFAULT: usize = 50;

/// Run `n` seeded schedules through `run`, shrinking and reporting the
/// first failure. Returns (ops checked, unavailable reads, batches
/// audited) across the sweep as a sanity signal that the workloads
/// actually exercised the cluster — and, for the batched sweeps, that
/// multi-command batches really flowed through the chosen log.
fn sweep(
    test_name: &str,
    default_n: usize,
    stream: u64,
    plan: &ChaosPlan,
    run: impl Fn(&ChaosSchedule, &Obs) -> Result<ChaosOutcome, String> + Copy,
) -> (usize, usize, usize) {
    let n = chaos_schedules(default_n);
    let pinned = std::env::var("CHAOS_SEED").is_ok();
    let base = chaos_seed(0xC0FFEE);
    let mut ops = 0;
    let mut unavailable = 0;
    let mut batches = 0;
    for i in 0..n {
        // Pinned seeds are used verbatim so a printed failure seed
        // re-runs the exact schedule; otherwise each sweep draws from its
        // own derived stream.
        let seed = if pinned {
            base.wrapping_add(i as u64)
        } else {
            derive_seed(derive_seed(base, stream), i as u64)
        };
        let schedule = ChaosSchedule::generate(seed, plan);
        match run(&schedule, &Obs::disabled()) {
            Ok(out) => {
                ops += out.ops_checked;
                unavailable += out.unavailable_reads;
                batches += out.batches_checked;
            }
            Err(reason) => {
                let failure = shrink_and_report(&schedule, test_name, reason, run);
                panic!("{failure}");
            }
        }
    }
    (ops, unavailable, batches)
}

fn lock_plan() -> ChaosPlan {
    ChaosPlan::lock_service(SimTime::from_secs(60), 16)
}

fn storage_plan() -> ChaosPlan {
    ChaosPlan::storage_service(SimTime::from_secs(60), 12)
}

#[test]
fn lock_sweep_a() {
    let (ops, _, _) = sweep("lock_sweep_a", LOCK_SWEEP_DEFAULT, 0xA, &lock_plan(), run_lock_chaos);
    assert!(ops > 0, "sweep never audited a completed op");
}

#[test]
fn lock_sweep_b() {
    let (ops, _, _) = sweep("lock_sweep_b", LOCK_SWEEP_DEFAULT, 0xB, &lock_plan(), run_lock_chaos);
    assert!(ops > 0, "sweep never audited a completed op");
}

// Sweeps c/d run the same plans with leader batching + accept
// pipelining enabled (batch 4, pipeline 2): same safety checkers, plus
// the batch-atomicity audit. Together with a/b and the storage sweeps
// the suite still runs its ≥200-schedule baseline, half of it batched.
#[test]
fn lock_sweep_c_batched() {
    let (ops, _, batches) = sweep(
        "lock_sweep_c_batched",
        LOCK_BATCHED_DEFAULT,
        0xC,
        &lock_plan(),
        run_lock_chaos_batched,
    );
    assert!(ops > 0, "sweep never audited a completed op");
    assert!(batches > 0, "batched sweep never chose a multi-command batch");
}

#[test]
fn lock_sweep_d_batched() {
    let (ops, _, batches) = sweep(
        "lock_sweep_d_batched",
        LOCK_BATCHED_DEFAULT,
        0xD,
        &lock_plan(),
        run_lock_chaos_batched,
    );
    assert!(ops > 0, "sweep never audited a completed op");
    assert!(batches > 0, "batched sweep never chose a multi-command batch");
}

#[test]
fn storage_sweep_a() {
    let (ops, _, _) = sweep(
        "storage_sweep_a",
        STORAGE_SWEEP_DEFAULT,
        0x5A,
        &storage_plan(),
        run_storage_chaos,
    );
    assert!(ops > 0, "sweep never audited a completed op");
}

#[test]
fn storage_sweep_b_batched() {
    let (ops, _, batches) = sweep(
        "storage_sweep_b_batched",
        STORAGE_SWEEP_DEFAULT,
        0x5B,
        &storage_plan(),
        run_storage_chaos_batched,
    );
    assert!(ops > 0, "sweep never audited a completed op");
    assert!(batches > 0, "batched sweep never applied a batch slot");
}

#[test]
fn chaotic_runs_reproduce_byte_for_byte() {
    // The acceptance property behind every printed repro seed: the same
    // schedule yields the same simulator fingerprint, run after run.
    let s = ChaosSchedule::generate(0xFEED, &lock_plan());
    let a = run_lock_chaos(&s, &Obs::disabled()).expect("within-margin chaos is safe");
    let b = run_lock_chaos(&s, &Obs::disabled()).expect("within-margin chaos is safe");
    assert_eq!(a.fingerprint, b.fingerprint, "nondeterministic run");

    // And a different schedule takes a different trajectory.
    let other = ChaosSchedule::generate(0xFEED + 1, &lock_plan());
    let c = run_lock_chaos(&other, &Obs::disabled()).expect("within-margin chaos is safe");
    assert_ne!(a.fingerprint, c.fingerprint, "fingerprint ignores the schedule");
}

#[test]
fn failing_schedules_shrink_to_the_first_bad_event() {
    // Synthetic failure predicate (any crash "fails"): exercises the
    // shrinker and the report format without needing a real safety bug.
    let schedule = ChaosSchedule::generate(0xBAD, &lock_plan());
    let first_crash = schedule
        .events
        .iter()
        .position(|e| matches!(e.action, ChaosAction::Crash(_)))
        .expect("generated schedule has a crash");
    let run = |s: &ChaosSchedule, _: &Obs| -> Result<ChaosOutcome, String> {
        if s.events.iter().any(|e| matches!(e.action, ChaosAction::Crash(_))) {
            Err("synthetic: crash observed".into())
        } else {
            Ok(ChaosOutcome {
                fingerprint: 0,
                ops_checked: 0,
                unavailable_reads: 0,
                eroded_keys: 0,
                batches_checked: 0,
            })
        }
    };
    let failure = shrink_and_report(&schedule, "failing_schedules_shrink", "seen".into(), run);
    assert_eq!(failure.seed, 0xBAD);
    assert_eq!(failure.minimal_reason, "synthetic: crash observed");
    assert!(failure.repro.contains("CHAOS_SEED=0xbad"));
    // The minimal prefix ends exactly at the first crash: header line plus
    // one line per event.
    let printed_events = failure.schedule.lines().count() - 1;
    assert_eq!(printed_events, first_crash + 1, "not minimal:\n{failure}");
}

/// Compress a schedule's timeline to at most `max` total duration,
/// preserving event order — market windows span days of simulated time,
/// far more than a protocol test needs between faults.
fn compress(schedule: &ChaosSchedule, max: SimTime) -> ChaosSchedule {
    let last = schedule
        .events
        .last()
        .map(|e| e.at.as_millis())
        .unwrap_or(0);
    if last <= max.as_millis() {
        return schedule.clone();
    }
    let k = last.div_ceil(max.as_millis());
    ChaosSchedule {
        seed: schedule.seed,
        events: schedule
            .events
            .iter()
            .map(|e| ChaosEvent {
                at: SimTime::from_millis(e.at.as_millis() / k),
                action: e.action.clone(),
            })
            .collect(),
    }
}

#[test]
fn repair_enabled_churn_sweep() {
    // The repair controller under market-derived chaos: for each seeded
    // market, replay the same kill-prone deployment with repair off and
    // with the hybrid policy (shared frozen kernels — identical boundary
    // decisions), check the repair ordering, then drive the live lock
    // cluster with the fault schedule derived from the *repairing*
    // replay, so repair rebids and on-demand boots join the crash /
    // restart timeline the safety checkers see.
    let n = chaos_schedules(8);
    let base = chaos_seed(0xC0FFEE);
    let eval_start = 7 * 24 * 60;
    let interval_hours = 3;
    // Strict improvement needs a kill the controller can still answer:
    // detection (1 min) + first backoff (5 min) + startup delay, with the
    // replacement running before the interval ends. 90 minutes of
    // headroom is comfortably past all three.
    let headroom = 90;
    let mut improved = 0usize;
    for i in 0..n {
        let seed = derive_seed(derive_seed(base, 0x4E), i as u64);
        let market = quick_market(seed, 2, 8);
        let (obs, _clock) = Obs::simulated();
        let (off, hybrid) = repair_pair(
            &market,
            eval_start,
            interval_hours,
            RepairConfig::hybrid(),
            &obs,
        );

        // Repair never hurts, and never outspends holding the fleet
        // on-demand for the whole window.
        assert!(
            hybrid.degraded_minutes <= off.degraded_minutes,
            "seed {seed:#x}: hybrid degraded {} > off {}",
            hybrid.degraded_minutes,
            off.degraded_minutes
        );
        assert!(hybrid.up_minutes >= off.up_minutes, "seed {seed:#x}");
        let baseline = on_demand_baseline_cost(
            &market,
            &ServiceSpec::lock_service(),
            ReplayConfig::new(eval_start, market.horizon(), interval_hours),
        );
        assert!(
            hybrid.total_cost < baseline,
            "seed {seed:#x}: repair cost {} ≥ on-demand baseline {baseline}",
            hybrid.total_cost,
        );

        // A mid-interval kill with repair headroom must strictly shrink
        // the degraded time.
        let interval_minutes = interval_hours * 60;
        let repairable_kill = off.instances.iter().any(|rec| {
            rec.termination == spot_jupiter::spot_market::Termination::Provider
                && off.intervals.iter().any(|iv| {
                    rec.ended_at >= iv.start
                        && rec.ended_at + headroom < iv.start + interval_minutes
                })
        });
        if repairable_kill {
            assert!(
                hybrid.degraded_minutes < off.degraded_minutes,
                "seed {seed:#x}: repairable kill but degraded did not shrink \
                 (off {}, hybrid {}) — repro: CHAOS_SEED={seed:#x} CHAOS_SCHEDULES=1 \
                 cargo test -q --test chaos repair_enabled_churn_sweep",
                off.degraded_minutes,
                hybrid.degraded_minutes
            );
            improved += 1;
        }

        // Safety under the repair-enabled timeline.
        let schedule = market_fault_schedule(&hybrid, eval_start, 5);
        let compressed = compress(&schedule, SimTime::from_secs(120));
        run_lock_chaos(&compressed, &Obs::disabled()).unwrap_or_else(|e| {
            panic!(
                "seed {seed:#x}: repair-enabled schedule broke safety: {e}\n{compressed}"
            )
        });
    }
    println!("repair_enabled_churn_sweep: base seed {base:#x}, {n} markets, {improved} with strict improvement");
    assert!(
        improved > 0,
        "no market produced a repairable kill — thin-margin fixture lost its churn"
    );
}

#[test]
fn market_derived_churn_preserves_lock_safety() {
    // Out-of-bid terminations from a real (synthetic-market) replay drive
    // the same fault pipeline: the timing pattern of correlated kills at
    // price spikes, not a random schedule. A deliberately thin bid margin
    // makes kills plentiful.
    let market = quick_market(21, 2, 8);
    let spec = ServiceSpec::lock_service();
    let eval_start = 7 * 24 * 60;
    let config = ReplayConfig::new(eval_start, 14 * 24 * 60, 3);
    let result = replay_strategy(&market, &spec, ExtraStrategy::new(0, 0.02), config);
    let schedule = market_fault_schedule(&result, eval_start, 5);
    let crashes = schedule
        .events
        .iter()
        .filter(|e| matches!(e.action, ChaosAction::Crash(_)))
        .count();
    assert!(crashes > 0, "fixture must produce out-of-bid churn");

    let compressed = compress(&schedule, SimTime::from_secs(120));
    let out = run_lock_chaos(&compressed, &Obs::disabled())
        .unwrap_or_else(|e| panic!("market-derived schedule broke safety: {e}\n{compressed}"));

    // Correlated price spikes can kill all five replicas at once; a total
    // wipe loses the log (and with it the cross-checkable history), which
    // the checker rightly tolerates. Only demand audited ops when at
    // least one replica survived throughout.
    let mut down = 0usize;
    let mut max_down = 0usize;
    for ev in &compressed.events {
        match ev.action {
            ChaosAction::Crash(_) => {
                down += 1;
                max_down = max_down.max(down);
            }
            ChaosAction::Restart(_) => down = down.saturating_sub(1),
            _ => {}
        }
    }
    if max_down < 5 {
        assert!(out.ops_checked > 0, "no ops audited despite a surviving replica");
    }
}

#[test]
fn capacity_migration_sweep() {
    // The dedicated capacity-era slice of the schedule budget: for each
    // seeded market, replay the evaluation week under the capacity
    // regime with the proactive-migration policy, then drive the live
    // lock cluster with the correlated crash schedule derived from its
    // reclamations (gap-compressed so the cluster never idles for
    // simulated hours). A replacement that boots before its victim's
    // kill shows up as a Restart preceding the paired Crash — the view
    // change happens before the kill lands — so the safety checkers see
    // the whole notice → drain → view change → kill sequence. Failures
    // shrink and print a `CHAOS_SEED=…` repro like every other sweep.
    let n = chaos_schedules(MIGRATION_SWEEP_DEFAULT);
    let pinned = std::env::var("CHAOS_SEED").is_ok();
    let base = chaos_seed(0xC0FFEE);
    let spec = ServiceSpec::lock_service();
    let eval_start = 7 * 24 * 60;
    let mut drains = 0usize;
    let mut late = 0usize;
    let mut crashes_total = 0usize;
    let mut ops = 0usize;
    for i in 0..n {
        // Pinned seeds are used verbatim so a printed failure seed
        // re-runs the exact market; the derived schedule is a pure
        // function of the market replay.
        let seed = if pinned {
            base.wrapping_add(i as u64)
        } else {
            derive_seed(derive_seed(base, 0x316), i as u64)
        };
        let market = quick_market(seed, 2, 8);
        let config =
            ReplayConfig::new(eval_start, 14 * 24 * 60, 3).with_era(BidEra::CapacityReclaim);
        let store = ModelStore::new();
        let (obs, _clock) = Obs::simulated();
        let result = replay_repair_stored(
            &market,
            &spec,
            ExtraStrategy::new(0, 0.2),
            config,
            RepairConfig::migrate(),
            &store,
            &obs,
        );
        for r in &result.audit {
            if let AuditKind::Migration { action, .. } = &r.kind {
                match action.as_str() {
                    "drained" => drains += 1,
                    "late_drain" => late += 1,
                    _ => {}
                }
            }
        }
        let derived = capacity_fault_schedule(&result, eval_start, 5);
        crashes_total += derived
            .events
            .iter()
            .filter(|e| matches!(e.action, ChaosAction::Crash(_)))
            .count();
        // Stamp the market seed on the derived schedule so a failure's
        // printed repro line re-runs this exact market.
        let schedule = ChaosSchedule {
            seed,
            events: derived.events,
        };
        match run_lock_chaos(&schedule, &Obs::disabled()) {
            Ok(out) => ops += out.ops_checked,
            Err(reason) => {
                let failure =
                    shrink_and_report(&schedule, "capacity_migration_sweep", reason, run_lock_chaos);
                panic!("{failure}");
            }
        }
    }
    println!(
        "capacity_migration_sweep: base seed {base:#x}, {n} markets, \
         {drains} drains ({late} late), {crashes_total} correlated crashes"
    );
    assert!(crashes_total > 0, "capacity regime produced no reclamation churn");
    assert!(drains >= 1, "no pre-deadline drain landed across the sweep");
    assert!(ops > 0, "sweep never audited a completed op");
}
