//! The strategy interface and market snapshots.

use spot_market::{Price, Zone};
use spot_model::{FailureModel, Forecast};

use crate::service::ServiceSpec;

/// Everything a strategy may know about one availability zone at bidding
/// time.
pub struct ZoneState<'a> {
    /// The zone.
    pub zone: Zone,
    /// Current spot price.
    pub spot_price: Price,
    /// Minutes the spot price has held its current value (the semi-Markov
    /// sojourn age).
    pub sojourn_age: u32,
    /// The on-demand price (the framework's bid cap, §4.2).
    pub on_demand: Price,
    /// The zone's trained failure model.
    pub model: &'a FailureModel,
}

impl ZoneState<'_> {
    /// Forecast this zone over `horizon` minutes (None if untrained).
    pub fn forecast(&self, horizon: u32) -> Option<Forecast> {
        self.model
            .forecast(self.spot_price, self.sojourn_age, horizon)
    }

    /// The minimal bid meeting `target_fp` from a precomputed forecast,
    /// capped strictly below on-demand; `None` when infeasible.
    pub fn min_bid(&self, forecast: &Forecast, target_fp: f64) -> Option<Price> {
        let candidates = std::iter::once(self.spot_price)
            .chain(forecast.levels().iter().copied())
            .filter(|&b| b >= self.spot_price && b < self.on_demand);
        let mut best: Option<Price> = None;
        for b in candidates {
            if self.model.fp_from_forecast(forecast, b, self.spot_price) <= target_fp {
                best = Some(best.map_or(b, |prev: Price| prev.min(b)));
            }
        }
        best
    }
}

/// A bidding decision: which zones to hold instances in and at what bids,
/// for the coming interval.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BidDecision {
    /// Zone and bid for every instance to run.
    pub bids: Vec<(Zone, Price)>,
}

impl BidDecision {
    /// An empty decision (run nothing — the strategy found no feasible
    /// deployment; the framework falls back to on-demand).
    pub fn empty() -> Self {
        BidDecision { bids: Vec::new() }
    }

    /// The number of instances.
    pub fn n(&self) -> usize {
        self.bids.len()
    }

    /// The objective value: the cost upper bound Σ bids (one interval at
    /// worst-case prices).
    pub fn cost_upper_bound(&self) -> Price {
        self.bids.iter().map(|(_, b)| *b).sum()
    }

    /// The bid for `zone`, if one was placed.
    pub fn bid_for(&self, zone: Zone) -> Option<Price> {
        self.bids.iter().find(|(z, _)| *z == zone).map(|(_, b)| *b)
    }
}

/// A bidding strategy: market snapshot in, bid decision out.
pub trait BiddingStrategy: Send + Sync {
    /// Short display name ("Jupiter", "Extra(0,0.2)", …).
    fn name(&self) -> String;

    /// Decide bids for the next interval of `horizon_minutes`.
    fn decide(
        &self,
        zones: &[ZoneState<'_>],
        spec: &ServiceSpec,
        horizon_minutes: u32,
    ) -> BidDecision;
}

impl BiddingStrategy for Box<dyn BiddingStrategy> {
    fn name(&self) -> String {
        self.as_ref().name()
    }

    fn decide(
        &self,
        zones: &[ZoneState<'_>],
        spec: &ServiceSpec,
        horizon_minutes: u32,
    ) -> BidDecision {
        self.as_ref().decide(zones, spec, horizon_minutes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spot_market::topology::all_zones;

    #[test]
    fn decision_accessors() {
        let zones = all_zones();
        let d = BidDecision {
            bids: vec![
                (zones[0], Price::from_dollars(0.01)),
                (zones[1], Price::from_dollars(0.02)),
            ],
        };
        assert_eq!(d.n(), 2);
        assert_eq!(d.cost_upper_bound(), Price::from_dollars(0.03));
        assert_eq!(d.bid_for(zones[0]), Some(Price::from_dollars(0.01)));
        assert_eq!(d.bid_for(zones[5]), None);
        let e = BidDecision::empty();
        assert_eq!(e.n(), 0);
        assert_eq!(e.cost_upper_bound(), Price::ZERO);
    }
}
