//! A feedback-control bidding strategy (Li et al., "On a Feedback
//! Control-based Mechanism of Bidding for Cloud Spot Service").
//!
//! Where Jupiter *models* the price process and derives bids from
//! predicted failure probabilities, the feedback controller is model-free:
//! it closes a PID loop on the only signal it can observe per pool — did
//! our standing bid survive the spot price since the last decision? The
//! per-pool error is the difference between the per-node availability
//! target and that observed survival indicator; the controller integrates
//! it and adjusts the bid multiplicatively around the current spot price.
//!
//! The controller is deliberately ignorant of the semi-Markov model: the
//! scenario engine races it against Jupiter to quantify what the model
//! buys (and what a well-tuned loop recovers without it).

use std::collections::HashMap;
use std::sync::Mutex;

use spot_market::{InstanceType, Price, Zone};

use crate::service::ServiceSpec;
use crate::strategy::{BidDecision, BiddingStrategy, PoolBid, ZoneState};

/// PID gains and actuation limits of the feedback bidder.
#[derive(Clone, Copy, Debug)]
pub struct FeedbackConfig {
    /// Proportional gain on the availability error.
    pub kp: f64,
    /// Integral gain (error accumulates across decisions).
    pub ki: f64,
    /// Derivative gain (on the error delta).
    pub kd: f64,
    /// Initial bid headroom over the spot price (0.15 ⇒ spot × 1.15).
    pub initial_headroom: f64,
    /// Headroom floor: the bid never drops below spot × (1 + floor).
    pub min_headroom: f64,
    /// Headroom ceiling: the bid never exceeds spot × (1 + ceiling), and
    /// is always capped strictly below the on-demand price.
    pub max_headroom: f64,
    /// Anti-windup clamp on the integrated error.
    pub integral_clamp: f64,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig {
            kp: 0.6,
            ki: 0.25,
            kd: 0.1,
            initial_headroom: 0.15,
            min_headroom: 0.02,
            max_headroom: 3.0,
            integral_clamp: 4.0,
        }
    }
}

/// Per-pool controller state.
#[derive(Clone, Copy, Debug, Default)]
struct PoolLoop {
    /// Headroom over spot the last decision bid (the actuator value).
    headroom: f64,
    /// The bid actually placed last time (to judge survival).
    last_bid: Price,
    /// Accumulated availability error.
    integral: f64,
    /// Previous error (for the derivative term).
    last_error: f64,
    /// Whether the pool has been bid at least once.
    engaged: bool,
}

/// The feedback-control bidder: one PID loop per (zone, type) pool.
///
/// Stateful across decisions (interior mutability, like
/// [`crate::FixedOnce`]): each call observes which standing bids the
/// current spot prices would have killed and moves every pool's headroom
/// by the PID law before re-selecting the cheapest pools.
pub struct FeedbackStrategy {
    config: FeedbackConfig,
    loops: Mutex<HashMap<(Zone, InstanceType), PoolLoop>>,
}

impl FeedbackStrategy {
    /// A controller with default gains.
    pub fn new() -> Self {
        Self::with_config(FeedbackConfig::default())
    }

    /// A controller with explicit gains.
    pub fn with_config(config: FeedbackConfig) -> Self {
        FeedbackStrategy {
            config,
            loops: Mutex::new(HashMap::new()),
        }
    }
}

impl Default for FeedbackStrategy {
    fn default() -> Self {
        Self::new()
    }
}

impl BiddingStrategy for FeedbackStrategy {
    fn name(&self) -> String {
        "Feedback".into()
    }

    fn decide(
        &self,
        zones: &[ZoneState<'_>],
        spec: &ServiceSpec,
        _horizon_minutes: u32,
    ) -> BidDecision {
        if zones.is_empty() {
            return BidDecision::empty();
        }
        let cfg = self.config;
        // The per-node availability the deployment needs (the loop's set
        // point): at the baseline node count, a node may fail with at most
        // the per-node FP target probability.
        let target = 1.0
            - spec
                .node_fp_target(spec.baseline_nodes.max(spec.quorum.min_nodes()))
                .unwrap_or(0.01);
        let mut loops = self.loops.lock().expect("poisoned");

        // 1. Control step: update every visible pool's loop from the
        // survival observation.
        for z in zones {
            let state = loops.entry((z.zone, z.instance_type)).or_default();
            if !state.engaged {
                state.headroom = cfg.initial_headroom;
                state.last_error = 0.0;
            } else {
                // Observed availability proxy: 1 when the standing bid
                // would still hold the instance at today's spot price.
                let survived = if state.last_bid >= z.spot_price { 1.0 } else { 0.0 };
                let error = target - survived; // > 0 ⇒ we were outbid
                state.integral =
                    (state.integral + error).clamp(-cfg.integral_clamp, cfg.integral_clamp);
                let derivative = error - state.last_error;
                let u = cfg.kp * error + cfg.ki * state.integral + cfg.kd * derivative;
                state.headroom = (state.headroom * (1.0 + u))
                    .clamp(cfg.min_headroom, cfg.max_headroom);
                state.last_error = error;
            }
        }

        // 2. Actuation: bid in the cheapest pools (by the would-be bid),
        // taking nodes until both the baseline count and any strength
        // floor are met. Bids stay strictly below on-demand.
        let mut priced: Vec<(Price, &ZoneState)> = zones
            .iter()
            .map(|z| {
                let state = loops[&(z.zone, z.instance_type)];
                let bid = z
                    .spot_price
                    .scale(1.0 + state.headroom)
                    .min(z.on_demand - Price::TICK);
                (bid.max(z.spot_price), z)
            })
            .collect();
        priced.sort_by_key(|(bid, z)| (*bid, z.zone.ordinal(), z.instance_type.ordinal()));

        let mut bids: Vec<PoolBid> = Vec::new();
        let mut strength = 0u32;
        let mut taken = vec![false; priced.len()];
        // Under `spec.diversify` (the capacity-reclaim era) the take
        // order prefers zones not yet selected: same-zone pools share
        // capacity crunches, so covering zones first buys independence.
        // A second sweep then fills any remaining need in plain price
        // order. With `diversify` off the first sweep is skipped and the
        // selection is byte-identical to the legacy single sweep.
        let needs_more = |bids: &Vec<PoolBid>, strength: u32| {
            bids.len() < spec.baseline_nodes || strength < spec.min_strength
        };
        if spec.diversify {
            let mut pass_zones: Vec<Zone> = Vec::new();
            for (i, (bid, z)) in priced.iter().enumerate() {
                if !needs_more(&bids, strength) {
                    break;
                }
                if pass_zones.contains(&z.zone) {
                    continue;
                }
                taken[i] = true;
                pass_zones.push(z.zone);
                bids.push(PoolBid {
                    zone: z.zone,
                    instance_type: z.instance_type,
                    bid: *bid,
                });
                strength += z.instance_type.capacity_weight();
            }
        }
        for (i, (bid, z)) in priced.iter().enumerate() {
            if !needs_more(&bids, strength) {
                break;
            }
            if taken[i] {
                continue;
            }
            bids.push(PoolBid {
                zone: z.zone,
                instance_type: z.instance_type,
                bid: *bid,
            });
            strength += z.instance_type.capacity_weight();
        }

        // 3. Remember what we actually bid (pools we skipped keep their
        // loop state but observe nothing next round — mark them
        // unengaged so a stale last_bid does not feed a bogus error).
        for (key, state) in loops.iter_mut() {
            state.engaged = false;
            if let Some(pb) = bids
                .iter()
                .find(|b| (b.zone, b.instance_type) == *key)
            {
                state.last_bid = pb.bid;
                state.engaged = true;
            }
        }
        BidDecision { bids }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spot_market::{PricePoint, PriceTrace};
    use spot_model::{FailureModel, FailureModelConfig};

    fn p(d: f64) -> Price {
        Price::from_dollars(d)
    }

    fn dummy_model() -> FailureModel {
        FailureModel::from_trace(
            &PriceTrace::new(
                vec![
                    PricePoint {
                        minute: 0,
                        price: p(0.01),
                    },
                    PricePoint {
                        minute: 10,
                        price: p(0.02),
                    },
                ],
                20,
            ),
            FailureModelConfig::default(),
        )
    }

    fn states<'a>(model: &'a FailureModel, spots: &[f64]) -> Vec<ZoneState<'a>> {
        let zones = spot_market::topology::all_zones();
        spots
            .iter()
            .enumerate()
            .map(|(i, s)| ZoneState {
                zone: zones[i],
                instance_type: InstanceType::M1Small,
                spot_price: p(*s),
                sojourn_age: 0,
                on_demand: p(0.044),
                model,
            })
            .collect()
    }

    #[test]
    fn bids_baseline_nodes_above_spot() {
        let m = dummy_model();
        let st = states(&m, &[0.008; 6]);
        let spec = ServiceSpec::lock_service();
        let d = FeedbackStrategy::new().decide(&st, &spec, 60);
        assert_eq!(d.n(), 5);
        for b in &d.bids {
            assert!(b.bid > p(0.008), "headroom over spot");
            assert!(b.bid < p(0.044), "capped below on-demand");
        }
    }

    #[test]
    fn raises_bids_after_being_outbid() {
        let m = dummy_model();
        let spec = ServiceSpec::lock_service();
        let strat = FeedbackStrategy::new();
        let first = strat.decide(&states(&m, &[0.008; 6]), &spec, 60);
        let b0 = first.bids[0];
        // Spot spikes above every standing bid: the loop must push
        // headroom up, so at the *same* spot price the new bid is higher.
        let _spiked = strat.decide(&states(&m, &[0.020; 6]), &spec, 60);
        let recovered = strat.decide(&states(&m, &[0.008; 6]), &spec, 60);
        let b2 = recovered
            .bid_for(b0.zone, b0.instance_type)
            .expect("still bids the cheap pool");
        assert!(
            b2 > b0.bid,
            "outbid loop must raise headroom: {:?} vs {:?}",
            b2,
            b0.bid
        );
    }

    #[test]
    fn decays_bids_while_surviving() {
        let m = dummy_model();
        let spec = ServiceSpec::lock_service();
        let strat = FeedbackStrategy::new();
        let first = strat.decide(&states(&m, &[0.008; 6]), &spec, 60);
        let b0 = first.bids[0];
        // Ten calm decisions: surviving means error < 0 (target < 1), so
        // the integral pulls headroom toward the floor.
        let mut last = b0.bid;
        for _ in 0..10 {
            let d = strat.decide(&states(&m, &[0.008; 6]), &spec, 60);
            last = d.bid_for(b0.zone, b0.instance_type).expect("still bidding");
        }
        assert!(last < b0.bid, "calm loop decays headroom: {last:?} vs {:?}", b0.bid);
        assert!(last > p(0.008), "but never below the spot price");
    }

    #[test]
    fn meets_strength_floor_with_pools() {
        let m = dummy_model();
        let zones = spot_market::topology::all_zones();
        // Two pools per zone: small and large, large spot price higher.
        let mut st = Vec::new();
        for &zone in zones.iter().take(4) {
            st.push(ZoneState {
                zone,
                instance_type: InstanceType::M1Small,
                spot_price: p(0.008),
                sojourn_age: 0,
                on_demand: p(0.044),
                model: &m,
            });
            st.push(ZoneState {
                zone,
                instance_type: InstanceType::M3Large,
                spot_price: p(0.018),
                sojourn_age: 0,
                on_demand: p(0.140),
                model: &m,
            });
        }
        let spec = ServiceSpec::lock_service()
            .with_pools(&[InstanceType::M1Small, InstanceType::M3Large])
            .with_min_strength(10);
        let d = FeedbackStrategy::new().decide(&st, &spec, 60);
        assert!(d.n() >= spec.baseline_nodes);
        assert!(d.strength() >= 10, "strength {} < 10", d.strength());
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(FeedbackStrategy::new().name(), "Feedback");
    }

    #[test]
    fn diversify_spreads_the_take_across_zones() {
        let m = dummy_model();
        let zones = spot_market::topology::all_zones();
        // Zone 0 offers three dirt-cheap pools; zones 1..4 one pricier
        // pool each. The legacy take concentrates in zone 0; the
        // diversified take covers zones first.
        let mut st = Vec::new();
        for ty in [
            InstanceType::M1Small,
            InstanceType::M1Medium,
            InstanceType::C3Large,
        ] {
            st.push(ZoneState {
                zone: zones[0],
                instance_type: ty,
                spot_price: p(0.004),
                sojourn_age: 0,
                on_demand: p(0.140),
                model: &m,
            });
        }
        for &zone in zones.iter().take(5).skip(1) {
            st.push(ZoneState {
                zone,
                instance_type: InstanceType::M1Small,
                spot_price: p(0.010),
                sojourn_age: 0,
                on_demand: p(0.044),
                model: &m,
            });
        }
        let pools = &[
            InstanceType::M1Small,
            InstanceType::M1Medium,
            InstanceType::C3Large,
        ];
        let spec = ServiceSpec::lock_service().with_pools(pools);
        let distinct = |d: &BidDecision| {
            let mut zs: Vec<_> = d.bids.iter().map(|b| b.zone).collect();
            zs.sort_by_key(|z| z.ordinal());
            zs.dedup();
            zs.len()
        };
        let legacy = FeedbackStrategy::new().decide(&st, &spec, 60);
        assert_eq!(legacy.n(), 5);
        assert!(distinct(&legacy) < 5, "cheap zone dominates: {:?}", legacy.bids);
        let spec_div = spec.clone().with_diversify(true);
        let spread = FeedbackStrategy::new().decide(&st, &spec_div, 60);
        assert_eq!(spread.n(), 5);
        assert_eq!(distinct(&spread), 5, "one pool per zone: {:?}", spread.bids);
    }
}
