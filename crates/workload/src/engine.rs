//! The request-level workload engine: an open-loop generator that
//! drives a replicated service (the Paxos lock service or the RS-Paxos
//! store) with a seeded arrival process, then reduces per-request
//! outcomes to latency quantiles, throughput series, and an SLO-based
//! availability figure.
//!
//! The engine separates three populations:
//!
//! * **simulated clients** (`population`) — the logical end users whose
//!   keys/locks the commands touch; scaling this to millions costs one
//!   `u64` draw per request, not an actor each;
//! * **sessions** (`sessions`) — the connection-pool actors that carry
//!   requests on the simulated wire (each keeps one request in flight,
//!   see `paxos::open_loop`);
//! * **replicas** (`replicas`) — the service cluster under test.
//!
//! Latency is scheduled-arrival → completion, so leader queueing and
//! session queueing are charged to the request (no coordinated
//! omission). The SLO availability counts an unacknowledged request as
//! a miss, making "the service never answered" indistinguishable from
//! "the service answered late" — the paper's fleet-level availability
//! treats lost instances the same way.

use obs::{LivenessWatchdog, Obs, SloSpec, SloTracker};
use paxos::open_loop::OpenLoopClient;
use paxos::{Cluster, LockCmd, LockService, PaxosNode, ReplicaConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use simnet::{NetworkConfig, NodeId, SimTime};
use storage::open_loop::RsOpenLoopClient;
use storage::{RsCluster, RsConfig, RsNode, StoreCmd};

use crate::arrival::{split_round_robin, ArrivalProcess};

/// Salt for the arrival-time stream (distinct from the command mix).
const ARRIVAL_SALT: u64 = 0x5EED_A221;
/// Salt for the command-mix stream.
const MIX_SALT: u64 = 0x5EED_C033;

/// Sim-time milliseconds as trace microseconds.
fn sim_micros(t: SimTime) -> u64 {
    t.as_millis().saturating_mul(1_000)
}

/// Everything that defines one workload run.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// When requests arrive.
    pub arrivals: ArrivalProcess,
    /// Arrival-generation horizon (measured from `start_at`).
    pub horizon: SimTime,
    /// Open-loop session actors carrying the requests.
    pub sessions: usize,
    /// Simulated client population (key/lock space); millions are fine.
    pub population: u64,
    /// Fraction of requests that are read-only queries.
    pub read_fraction: f64,
    /// Master seed (arrival times and command mix derive from it).
    pub seed: u64,
    /// Latency bound a request must meet to count as SLO-good.
    pub sla: SimTime,
    /// Replica count for the service cluster.
    pub replicas: usize,
    /// Leader batching: max client ops folded into one slot (1 = off).
    pub batch_max_ops: usize,
    /// Leader batching: how long a partial batch lingers.
    pub batch_delay: SimTime,
    /// Accept pipelining: max in-flight proposals (0 = unlimited).
    pub pipeline: usize,
    /// Serve read-only commands from follower-local applied state
    /// (lock service only; the store's followers hold single shards).
    pub local_reads: bool,
    /// Trace every Nth request (0 = none); sampling keeps the bounded
    /// trace ring representative at 100k-request scale.
    pub trace_every: u64,
    /// Warm-up before the first arrival (leader election headroom).
    pub start_at: SimTime,
    /// Extra time after the last arrival to drain stragglers.
    pub drain_grace: SimTime,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            arrivals: ArrivalProcess::Poisson { rate_per_sec: 200.0 },
            horizon: SimTime::from_secs(30),
            sessions: 48,
            population: 10_000,
            read_fraction: 0.5,
            seed: 2014,
            sla: SimTime::from_millis(800),
            replicas: 5,
            batch_max_ops: 1,
            batch_delay: SimTime::from_millis(5),
            pipeline: 0,
            local_reads: false,
            trace_every: 64,
            start_at: SimTime::from_secs(3),
            drain_grace: SimTime::from_secs(120),
        }
    }
}

/// The request-level outcome of one workload run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadReport {
    /// Requests scheduled.
    pub requests: u64,
    /// Requests acknowledged before the drain deadline.
    pub completed: u64,
    /// Client-side retransmissions.
    pub retransmits: u64,
    /// Completions served locally by followers (lock service only).
    pub local_served: u64,
    /// Completions within the SLA bound.
    pub sla_met: u64,
    /// SLO availability in parts-per-million: `sla_met / requests`
    /// (unacknowledged requests are misses).
    pub availability_ppm: u64,
    /// Nearest-rank median of scheduled→completion latency.
    pub latency_p50: SimTime,
    /// Nearest-rank 99th percentile of scheduled→completion latency.
    pub latency_p99: SimTime,
    /// Burn-rate alerts fired by the request-latency SLO tracker.
    pub slo_alerts_fired: u64,
    /// Simulation time when the run stopped.
    pub elapsed: SimTime,
}

/// Nearest-rank quantile of an ascending-sorted sample.
fn quantile(sorted: &[SimTime], q: f64) -> SimTime {
    if sorted.is_empty() {
        return SimTime::ZERO;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One request's timing, service-agnostic.
struct Outcome {
    scheduled: SimTime,
    completed: Option<SimTime>,
}

/// Reduce raw outcomes to the report and publish `{prefix}.*` counters
/// plus the per-second `{prefix}.throughput` series into `obs`.
#[allow(clippy::too_many_arguments)]
fn summarize(
    spec: &WorkloadSpec,
    prefix: &str,
    outcomes: Vec<Outcome>,
    retransmits: u64,
    local_served: u64,
    elapsed: SimTime,
    obs: &Obs,
) -> WorkloadReport {
    let requests = outcomes.len() as u64;
    let mut latencies: Vec<SimTime> = Vec::new();
    let mut sla_met = 0u64;
    // Per-sim-minute SLO feed (scheduled-minute buckets, in order) and
    // per-second completion counts for the throughput series.
    let minutes = |t: SimTime| t.as_millis() / 60_000;
    let max_minute = outcomes
        .iter()
        .map(|o| minutes(o.scheduled))
        .max()
        .unwrap_or(0);
    let mut minute_good = vec![0u64; max_minute as usize + 1];
    let mut minute_total = vec![0u64; max_minute as usize + 1];
    let mut per_second: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for o in &outcomes {
        let m = minutes(o.scheduled) as usize;
        minute_total[m] += 1;
        if let Some(done) = o.completed {
            let lat = done.saturating_sub(o.scheduled);
            latencies.push(lat);
            if lat <= spec.sla {
                sla_met += 1;
                minute_good[m] += 1;
            }
            *per_second.entry(done.as_millis() / 1_000).or_insert(0) += 1;
        }
    }
    let completed = latencies.len() as u64;
    latencies.sort_unstable();
    let p50 = quantile(&latencies, 0.50);
    let p99 = quantile(&latencies, 0.99);

    let mut tracker = SloTracker::new(
        SloSpec::request_latency(60),
        obs.alerts.clone(),
    );
    for (m, &total) in minute_total.iter().enumerate() {
        if total > 0 {
            tracker.record(m as u64, minute_good[m] as f64, total as f64);
        }
    }
    let availability_ppm = sla_met
        .saturating_mul(1_000_000)
        .checked_div(requests)
        .unwrap_or(1_000_000);

    for (&sec, &n) in &per_second {
        obs.set_time_micros(sec.saturating_mul(1_000_000));
        obs.record_series(&format!("{prefix}.throughput"), n as f64);
    }
    obs.set_time_micros(sim_micros(elapsed));
    obs.counter(&format!("{prefix}.requests")).add(requests);
    obs.counter(&format!("{prefix}.completed")).add(completed);
    obs.counter(&format!("{prefix}.retransmits")).add(retransmits);
    obs.counter(&format!("{prefix}.reads_local")).add(local_served);
    obs.counter(&format!("{prefix}.sla_met")).add(sla_met);
    obs.counter(&format!("{prefix}.slo.availability"))
        .add(availability_ppm);
    obs.counter(&format!("{prefix}.slo.alerts_fired"))
        .add(tracker.alerts_fired());
    obs.counter(&format!("{prefix}.latency_p50_micros"))
        .add(sim_micros(p50));
    obs.counter(&format!("{prefix}.latency_p99_micros"))
        .add(sim_micros(p99));

    WorkloadReport {
        requests,
        completed,
        retransmits,
        local_served,
        sla_met,
        availability_ppm,
        latency_p50: p50,
        latency_p99: p99,
        slo_alerts_fired: tracker.alerts_fired(),
        elapsed,
    }
}

/// The lock-service command for one request of user `user`.
fn lock_cmd(rng: &mut ChaCha8Rng, spec: &WorkloadSpec, user: u64) -> LockCmd {
    let name = format!("u{user}");
    if rng.gen_bool(spec.read_fraction.clamp(0.0, 1.0)) {
        LockCmd::Holder { name }
    } else if rng.gen_bool(0.5) {
        LockCmd::Acquire {
            name,
            owner: NodeId(user as usize),
        }
    } else {
        LockCmd::Release {
            name,
            owner: NodeId(user as usize),
        }
    }
}

/// The store command for one request of user `user` (64-byte objects).
fn store_cmd(rng: &mut ChaCha8Rng, spec: &WorkloadSpec, user: u64) -> StoreCmd {
    let key = format!("u{user}");
    if rng.gen_bool(spec.read_fraction.clamp(0.0, 1.0)) {
        StoreCmd::Get { key }
    } else {
        StoreCmd::Put {
            key,
            object: bytes::Bytes::from(vec![(user % 251) as u8 + 1; 64]),
        }
    }
}

/// Generate the absolute-time request stream for `spec`.
fn schedule<C>(
    spec: &WorkloadSpec,
    mut cmd: impl FnMut(&mut ChaCha8Rng, u64) -> C,
) -> Vec<(SimTime, C)> {
    let arrivals = spec
        .arrivals
        .sample(spec.seed ^ ARRIVAL_SALT, spec.horizon);
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed ^ MIX_SALT);
    arrivals
        .into_iter()
        .map(|t| {
            let user = rng.gen_range(0..spec.population.max(1));
            (spec.start_at + t, cmd(&mut rng, user))
        })
        .collect()
}

/// Run `spec` against a fresh lock-service cluster, recording
/// `workload.*` metrics into `obs`.
pub fn run_lock_workload(spec: &WorkloadSpec, net: NetworkConfig, obs: &Obs) -> WorkloadReport {
    let cfg = ReplicaConfig {
        batch_max_ops: spec.batch_max_ops,
        batch_delay: spec.batch_delay,
        pipeline: spec.pipeline,
        local_reads: spec.local_reads,
        obs: obs.clone(),
        ..ReplicaConfig::default()
    };
    let mut cluster = Cluster::new(spec.replicas, LockService::new(), cfg, net, spec.seed);
    let stream = schedule(spec, |rng, user| lock_cmd(rng, spec, user));
    let requests = stream.len();
    let mut session_ids = Vec::with_capacity(spec.sessions);
    for sched in split_round_robin(stream, spec.sessions.max(1)) {
        let id = NodeId(cluster.sim.node_count());
        let session = OpenLoopClient::new(id, cluster.servers().to_vec(), sched)
            .with_obs(obs.clone())
            .with_local_reads(spec.local_reads)
            .with_trace_every(spec.trace_every);
        let got = cluster.sim.add_node(PaxosNode::OpenLoop(session));
        assert_eq!(got, id);
        session_ids.push(id);
    }

    let deadline = spec.start_at + spec.horizon + spec.drain_grace;
    let mut watchdog = LivenessWatchdog::new(
        obs.alerts.clone(),
        paxos::harness::LIVENESS_STALL_BOUND,
    );
    loop {
        let completed: usize = session_ids
            .iter()
            .filter_map(|&id| cluster.sim.actor(id).and_then(PaxosNode::as_open_loop))
            .map(OpenLoopClient::completions)
            .sum();
        let outstanding = requests - completed;
        watchdog.observe(sim_micros(cluster.sim.now()), outstanding as u64);
        if outstanding == 0 || cluster.sim.now() >= deadline {
            break;
        }
        let next = cluster.sim.now() + SimTime::from_secs(1);
        cluster.sim.run_until(next.min(deadline));
    }

    let mut outcomes = Vec::with_capacity(requests);
    let (mut retransmits, mut local_served) = (0u64, 0u64);
    for &id in &session_ids {
        let s = cluster
            .sim
            .actor(id)
            .and_then(PaxosNode::as_open_loop)
            .expect("session exists");
        retransmits += s.retransmits();
        local_served += s.local_served();
        for r in s.records() {
            outcomes.push(Outcome {
                scheduled: r.scheduled,
                completed: r.completed.as_ref().map(|&(t, _)| t),
            });
        }
    }
    summarize(
        spec,
        "workload",
        outcomes,
        retransmits,
        local_served,
        cluster.sim.now(),
        obs,
    )
}

/// Run `spec` against a fresh RS-Paxos storage cluster, recording
/// `workload_store.*` metrics into `obs`. Local reads do not apply —
/// a follower holds one shard and cannot reconstruct an object.
pub fn run_storage_workload(spec: &WorkloadSpec, net: NetworkConfig, obs: &Obs) -> WorkloadReport {
    let cfg = RsConfig {
        batch_max_ops: spec.batch_max_ops,
        batch_delay: spec.batch_delay,
        pipeline: spec.pipeline,
        obs: obs.clone(),
        ..RsConfig::default()
    };
    let mut cluster = RsCluster::new(spec.replicas, cfg, net, spec.seed);
    let stream = schedule(spec, |rng, user| store_cmd(rng, spec, user));
    let requests = stream.len();
    let mut session_ids = Vec::with_capacity(spec.sessions);
    for sched in split_round_robin(stream, spec.sessions.max(1)) {
        let id = NodeId(cluster.sim.node_count());
        let session = RsOpenLoopClient::new(id, cluster.servers().to_vec(), sched)
            .with_obs(obs.clone())
            .with_trace_every(spec.trace_every);
        let got = cluster.sim.add_node(RsNode::OpenLoop(session));
        assert_eq!(got, id);
        session_ids.push(id);
    }

    let deadline = spec.start_at + spec.horizon + spec.drain_grace;
    let mut watchdog = LivenessWatchdog::new(
        obs.alerts.clone(),
        paxos::harness::LIVENESS_STALL_BOUND,
    );
    loop {
        let completed: usize = session_ids
            .iter()
            .filter_map(|&id| cluster.sim.actor(id).and_then(RsNode::as_open_loop))
            .map(RsOpenLoopClient::completions)
            .sum();
        let outstanding = requests - completed;
        watchdog.observe(sim_micros(cluster.sim.now()), outstanding as u64);
        if outstanding == 0 || cluster.sim.now() >= deadline {
            break;
        }
        let next = cluster.sim.now() + SimTime::from_secs(1);
        cluster.sim.run_until(next.min(deadline));
    }

    let mut outcomes = Vec::with_capacity(requests);
    let mut retransmits = 0u64;
    for &id in &session_ids {
        let s = cluster
            .sim
            .actor(id)
            .and_then(RsNode::as_open_loop)
            .expect("session exists");
        retransmits += s.retransmits();
        for r in s.records() {
            outcomes.push(Outcome {
                scheduled: r.scheduled,
                completed: r.completed.as_ref().map(|&(t, _)| t),
            });
        }
    }
    summarize(
        spec,
        "workload_store",
        outcomes,
        retransmits,
        0,
        cluster.sim.now(),
        obs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec {
            arrivals: ArrivalProcess::Poisson { rate_per_sec: 40.0 },
            horizon: SimTime::from_secs(5),
            sessions: 16,
            population: 100,
            trace_every: 0,
            ..WorkloadSpec::default()
        }
    }

    #[test]
    fn lock_workload_drains_and_reports() {
        let obs = Obs::disabled();
        let report = run_lock_workload(&small_spec(), NetworkConfig::default(), &obs);
        assert!(report.requests > 100, "requests {}", report.requests);
        assert_eq!(report.completed, report.requests);
        assert!(report.latency_p50 > SimTime::ZERO);
        assert!(report.latency_p99 >= report.latency_p50);
    }

    #[test]
    fn storage_workload_drains_and_reports() {
        let obs = Obs::disabled();
        let spec = WorkloadSpec {
            sessions: 24,
            ..small_spec()
        };
        let report = run_storage_workload(&spec, NetworkConfig::default(), &obs);
        assert!(report.requests > 100);
        assert_eq!(report.completed, report.requests);
    }

    #[test]
    fn identical_specs_identical_reports() {
        let spec = small_spec();
        let a = run_lock_workload(&spec, NetworkConfig::default(), &Obs::disabled());
        let b = run_lock_workload(&spec, NetworkConfig::default(), &Obs::disabled());
        assert_eq!(a, b);
    }

    #[test]
    fn batched_lock_workload_drains() {
        let spec = WorkloadSpec {
            batch_max_ops: 8,
            pipeline: 4,
            ..small_spec()
        };
        let obs = Obs::disabled();
        let report = run_lock_workload(&spec, NetworkConfig::default(), &obs);
        assert_eq!(report.completed, report.requests);
    }
}
