//! Result structures for replayed experiments.

use spot_market::{InstanceType, Price, Termination, Zone};

/// One instance's full life, for audit and billing.
#[derive(Clone, Debug)]
pub struct InstanceRecord {
    /// Zone the instance ran in.
    pub zone: Zone,
    /// The instance-type pool it ran in.
    pub instance_type: InstanceType,
    /// The bid it was held at.
    pub bid: Price,
    /// Minute the spot request was granted (billing starts here).
    pub granted_at: u64,
    /// Minute the instance finished booting and joined the service.
    pub running_from: u64,
    /// Minute it stopped (out-of-bid kill, boundary replacement, or end
    /// of replay).
    pub ended_at: u64,
    /// Who terminated it.
    pub termination: Termination,
    /// Whether this was an on-demand fallback instance launched by the
    /// repair controller (billed hourly at the fixed on-demand price,
    /// never killed by the provider) rather than a spot instance.
    pub on_demand: bool,
    /// The billed charge.
    pub cost: Price,
}

/// Per-interval bookkeeping.
#[derive(Clone, Debug)]
pub struct IntervalOutcome {
    /// Interval start minute (within the evaluation window).
    pub start: u64,
    /// Number of instances the decision called for.
    pub group_size: usize,
    /// Quorum size for that group.
    pub quorum: usize,
    /// Sum of bids (the optimization objective for this interval).
    pub cost_upper_bound: Price,
    /// Minutes within this interval with a quorum running.
    pub up_minutes: u64,
    /// Minutes within this interval with fewer live instances than the
    /// decided group size (the quorum may still hold while degraded).
    pub degraded_minutes: u64,
    /// The largest number of simultaneously live instances observed
    /// within the interval — never exceeds `group_size`, repair included.
    pub max_live: usize,
    /// Out-of-bid kills during the interval.
    pub kills: usize,
}

/// The outcome of one strategy replay.
#[derive(Clone, Debug)]
pub struct ReplayResult {
    /// Strategy display name.
    pub strategy: String,
    /// Total billed cost over the evaluation window.
    pub total_cost: Price,
    /// Evaluation window length in minutes.
    pub window_minutes: u64,
    /// Minutes with a quorum of the active group running.
    pub up_minutes: u64,
    /// Minutes spent below the decided group strength (see
    /// [`IntervalOutcome::degraded_minutes`]) — the repair controller's
    /// objective.
    pub degraded_minutes: u64,
    /// The share of [`Self::total_cost`] billed to on-demand fallback
    /// instances ([`Price::ZERO`] whenever repair never escalated).
    pub on_demand_cost: Price,
    /// All instance lifetimes.
    pub instances: Vec<InstanceRecord>,
    /// Per-interval details.
    pub intervals: Vec<IntervalOutcome>,
    /// Final metrics snapshot, when the replay ran with an enabled
    /// [`obs::Obs`] (see `replay_strategy_observed`); `None` otherwise.
    pub metrics: Option<obs::MetricsSnapshot>,
    /// Recorded time series (per-zone prices and bids, fleet size,
    /// interval cost, availability, deaths — see the series table in
    /// DESIGN.md), when the replay ran with an enabled [`obs::Obs`]
    /// whose series store is live; empty otherwise. The time axis is
    /// market minutes.
    pub series: Vec<obs::SeriesSnapshot>,
    /// Alerts fired by the online monitors (SLO burn-rate, fleet-deficit
    /// and repair-budget watchdogs) during the replay; empty when the
    /// replay ran without an enabled alert sink.
    pub alerts: Vec<obs::AlertEvent>,
    /// The decision audit log (bid selections and repair actions), in
    /// decision order; alerts cross-reference these by
    /// [`obs::AuditRecord::seq`]. Empty when auditing was disabled.
    pub audit: Vec<obs::AuditRecord>,
}

impl ReplayResult {
    /// Measured availability: fraction of evaluated minutes with a quorum
    /// up.
    pub fn availability(&self) -> f64 {
        if self.window_minutes == 0 {
            return 1.0;
        }
        self.up_minutes as f64 / self.window_minutes as f64
    }

    /// Downtime over the window, in minutes.
    pub fn downtime_minutes(&self) -> u64 {
        self.window_minutes - self.up_minutes
    }

    /// Total out-of-bid kills.
    pub fn total_kills(&self) -> usize {
        self.intervals.iter().map(|i| i.kills).sum()
    }

    /// The spot share of the bill (total minus on-demand fallback
    /// charges).
    pub fn spot_cost(&self) -> Price {
        self.total_cost - self.on_demand_cost
    }

    /// The recorded series named `name`, if present.
    pub fn series_named(&self, name: &str) -> Option<&obs::SeriesSnapshot> {
        self.series.iter().find(|s| s.name == name)
    }

    /// The bill reconciled per `(zone, instance-type)` pool, in zone/type
    /// ordinal order — every billed cent is attributed to exactly one
    /// pool, so the values sum to [`Self::total_cost`].
    pub fn cost_by_pool(&self) -> Vec<((Zone, InstanceType), Price)> {
        let mut pools: Vec<((Zone, InstanceType), Price)> = Vec::new();
        for rec in &self.instances {
            let key = (rec.zone, rec.instance_type);
            match pools.iter_mut().find(|(k, _)| *k == key) {
                Some((_, cost)) => *cost += rec.cost,
                None => pools.push((key, rec.cost)),
            }
        }
        pools.sort_by_key(|((z, ty), _)| (z.ordinal(), ty.ordinal()));
        pools
    }

    /// Mean group size across intervals.
    pub fn mean_group_size(&self) -> f64 {
        if self.intervals.is_empty() {
            return 0.0;
        }
        self.intervals
            .iter()
            .map(|i| i.group_size as f64)
            .sum::<f64>()
            / self.intervals.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spot_market::topology::all_zones;

    fn result(window: u64, up: u64) -> ReplayResult {
        ReplayResult {
            strategy: "test".into(),
            total_cost: Price::from_dollars(1.0),
            window_minutes: window,
            up_minutes: up,
            degraded_minutes: 0,
            on_demand_cost: Price::ZERO,
            instances: vec![],
            intervals: vec![
                IntervalOutcome {
                    start: 0,
                    group_size: 5,
                    quorum: 3,
                    cost_upper_bound: Price::ZERO,
                    up_minutes: up.min(window / 2),
                    degraded_minutes: 0,
                    max_live: 5,
                    kills: 2,
                },
                IntervalOutcome {
                    start: window / 2,
                    group_size: 7,
                    quorum: 4,
                    cost_upper_bound: Price::ZERO,
                    up_minutes: up.saturating_sub(window / 2),
                    degraded_minutes: 0,
                    max_live: 7,
                    kills: 1,
                },
            ],
            metrics: None,
            series: Vec::new(),
            alerts: Vec::new(),
            audit: Vec::new(),
        }
    }

    #[test]
    fn availability_and_downtime() {
        let r = result(1_000, 900);
        assert!((r.availability() - 0.9).abs() < 1e-12);
        assert_eq!(r.downtime_minutes(), 100);
        assert_eq!(r.total_kills(), 3);
        assert!((r.mean_group_size() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn cost_splits_into_spot_and_on_demand() {
        let mut r = result(1_000, 900);
        assert_eq!(r.spot_cost(), r.total_cost);
        r.on_demand_cost = Price::from_dollars(0.25);
        r.total_cost = Price::from_dollars(1.0);
        assert_eq!(r.spot_cost(), Price::from_dollars(0.75));
    }

    #[test]
    fn empty_window_counts_as_available() {
        let mut r = result(1_000, 1_000);
        r.window_minutes = 0;
        r.up_minutes = 0;
        assert_eq!(r.availability(), 1.0);
    }

    #[test]
    fn instance_record_fields_round_trip() {
        let zone = all_zones()[0];
        let rec = InstanceRecord {
            zone,
            instance_type: InstanceType::M1Small,
            bid: Price::from_dollars(0.01),
            granted_at: 5,
            running_from: 10,
            ended_at: 100,
            termination: Termination::Provider,
            on_demand: false,
            cost: Price::from_dollars(0.02),
        };
        assert_eq!(rec.zone, zone);
        assert!(rec.granted_at < rec.running_from);
    }
}
