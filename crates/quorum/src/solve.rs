//! The inverse availability problem (Fig. 3, line 4).
//!
//! The online bidding algorithm enumerates candidate node counts `n` and,
//! for each, needs the **largest equal per-node failure probability** `FP`
//! such that a service with `n` nodes at that failure probability still
//! meets the availability target. Equal probabilities are optimal once the
//! quorum is a fixed threshold (§4.1), so this reduces to inverting the
//! monotone map `p ↦ P(≥ k of n Bernoulli(1−p) alive)`.

use crate::availability::threshold_availability;

/// Bisection iterations; 80 halvings of `[0, 1]` reach ~1e-24, far below
/// any meaningful probability resolution.
const ITERS: u32 = 80;

/// The largest per-node failure probability `p` such that a `k`-of-`n`
/// threshold system with all nodes at `p` has availability ≥ `target`.
///
/// Returns `None` when the target is unreachable even with perfect nodes
/// (`target > 1`) or the inputs are degenerate. For `k = 0` every `p`
/// works and `1.0` is returned.
pub fn node_failure_pr(n: usize, k: usize, target: f64) -> Option<f64> {
    assert!(k <= n, "threshold {k} above universe {n}");
    assert!(target.is_finite() && target >= 0.0, "invalid target");
    if target > 1.0 {
        return None;
    }
    if k == 0 || target == 0.0 {
        return Some(1.0);
    }
    let avail = |p: f64| threshold_availability(&vec![p; n], k);
    if avail(1.0) >= target {
        return Some(1.0);
    }
    // avail is continuous and non-increasing in p with avail(0) = 1 ≥
    // target ≥ avail(1): bisect for the crossing.
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..ITERS {
        let mid = 0.5 * (lo + hi);
        if avail(mid) >= target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// [`node_failure_pr`] for a simple-majority quorum over `n` nodes.
pub fn node_failure_pr_majority(n: usize, target: f64) -> Option<f64> {
    node_failure_pr(n, n / 2 + 1, target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_target_five_node_majority() {
        // The on-demand baseline: 5 nodes at FP 0.01, majority, has
        // availability 0.9999901494 — so inverting that availability for
        // 5 nodes must give back p ≈ 0.01.
        let target = 0.9999901494;
        let p = node_failure_pr_majority(5, target).unwrap();
        assert!((p - 0.01).abs() < 1e-6, "got {p}");
    }

    #[test]
    fn solution_is_feasible_and_tight() {
        for &(n, k) in &[(3usize, 2usize), (5, 3), (5, 4), (7, 4), (9, 5)] {
            let target = 0.99999;
            let p = node_failure_pr(n, k, target).unwrap();
            let at = threshold_availability(&vec![p; n], k);
            let above = threshold_availability(&vec![(p + 1e-6).min(1.0); n], k);
            assert!(at >= target - 1e-12, "n={n} k={k}: {at} < {target}");
            assert!(above < target, "n={n} k={k}: not tight");
        }
    }

    #[test]
    fn more_nodes_tolerate_higher_per_node_fp() {
        // Majority systems: growing the group relaxes the per-node target —
        // the effect the bidding algorithm exploits when cheap zones are
        // plentiful.
        let target = 0.999999;
        let p3 = node_failure_pr_majority(3, target).unwrap();
        let p5 = node_failure_pr_majority(5, target).unwrap();
        let p7 = node_failure_pr_majority(7, target).unwrap();
        assert!(p3 < p5 && p5 < p7, "{p3} {p5} {p7}");
    }

    #[test]
    fn rs_quorums_demand_lower_fp_than_majority() {
        // A 4-of-5 quorum (θ(3,5) RS-Paxos) tolerates only one failure, so
        // the per-node FP target is stricter than majority's.
        let target = 0.999999;
        let maj = node_failure_pr(5, 3, target).unwrap();
        let rs = node_failure_pr(5, 4, target).unwrap();
        assert!(rs < maj, "rs {rs} !< majority {maj}");
    }

    #[test]
    fn edge_cases() {
        assert_eq!(node_failure_pr(5, 0, 0.999), Some(1.0));
        assert_eq!(node_failure_pr(5, 3, 0.0), Some(1.0));
        assert_eq!(node_failure_pr(5, 3, 1.5), None);
        // A single mandatory node: availability 1-p ≥ t ⇒ p = 1-t.
        let p = node_failure_pr(1, 1, 0.99).unwrap();
        assert!((p - 0.01).abs() < 1e-9);
    }

    #[test]
    fn target_one_requires_near_perfect_nodes() {
        // The unavailability of 5 nodes at per-node FP p is ~10·p³, which
        // underflows double precision once p ≲ 2e-6 — the solver can only
        // resolve the target to that rounding floor.
        let p = node_failure_pr(5, 3, 1.0).unwrap();
        assert!(p < 1e-5, "got {p}");
    }
}
