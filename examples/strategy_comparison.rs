//! A miniature of Figures 6/7: replay the lock service over the market
//! under Jupiter and the Extra heuristics, and print the cost/availability
//! trade-off that is the paper's core result — plus the observability
//! layer's view of each replay (bids, deaths by cause, decision timing).
//!
//! The comparison is one declarative [`SweepSpec`] run by the scenario
//! engine: the engine shares one trained kernel per zone across all three
//! strategy cells (watch `model_store.fits_performed` stay at the zone
//! count) and folds each cell's private metrics registry into the
//! scenario registry under a `cell.{strategy}.{interval}h.` prefix.
//!
//! ```text
//! cargo run --release --example strategy_comparison
//! ```

use spot_jupiter::jupiter::{ExtraStrategy, JupiterStrategy, ServiceSpec};
use spot_jupiter::obs::export::prometheus_text;
use spot_jupiter::obs::{MetricsSnapshot, Obs};
use spot_jupiter::replay::scenario::{Scenario, SweepSpec};
use spot_jupiter::spot_market::{InstanceType, Market, MarketConfig};

fn main() {
    // 4 training weeks + 2 evaluation weeks, 12 zones.
    let train = 4 * 7 * 24 * 60;
    let eval = 2 * 7 * 24 * 60;
    let mut cfg = MarketConfig::paper(2015, train + eval);
    cfg.zones.truncate(12);
    cfg.types = vec![InstanceType::M1Small];
    let market = Market::generate(cfg);
    let spec = ServiceSpec::lock_service();

    // The whole comparison is one sweep: the cells share the market and
    // the per-zone kernels through the scenario; each cell gets a private
    // Obs (handed to the strategy factory, so Jupiter's decision metrics
    // stay separable per cell).
    let (obs, _clock) = Obs::simulated();
    let scenario = Scenario::new(market, train, train + eval).with_obs(obs.clone());
    let interval_hours = 6u64;
    let sweep = SweepSpec::new(spec.clone())
        .strategy(|o| Box::new(JupiterStrategy::new().with_obs(o.clone())))
        .strategy(|_| Box::new(ExtraStrategy::new(0, 0.2)))
        .strategy(|_| Box::new(ExtraStrategy::new(2, 0.2)))
        .intervals(vec![interval_hours]);

    println!(
        "lock service, 2 evaluated weeks, {interval_hours} h bidding interval, {} zones\n",
        scenario.market().zones().len()
    );
    println!(
        "{:<14} {:>10} {:>13} {:>16} {:>7}",
        "strategy", "cost ($)", "availability", "downtime (min)", "kills"
    );
    let cells = scenario.run(&sweep);
    let mut snapshots: Vec<(String, MetricsSnapshot)> = Vec::new();
    for cell in &cells {
        let r = &cell.result;
        println!(
            "{:<14} {:>10.2} {:>13.6} {:>16} {:>7}",
            r.strategy,
            r.total_cost.as_dollars(),
            r.availability(),
            r.downtime_minutes(),
            r.total_kills()
        );
        snapshots.push((
            r.strategy.clone(),
            r.metrics
                .clone()
                .expect("cells of an observed scenario carry metrics"),
        ));
    }
    println!(
        "{:<14} {:>10.2} {:>13.6} {:>16} {:>7}",
        "Baseline",
        scenario.baseline_cost(&spec).as_dollars(),
        spec.baseline_availability(),
        "-",
        0
    );

    println!("\n== observability: what each strategy actually did ==");
    println!(
        "{:<14} {:>6} {:>9} {:>10} {:>9} {:>8} {:>13}",
        "strategy", "bids", "granted", "oob death", "boundary", "end", "same-minute"
    );
    for (name, snap) in &snapshots {
        println!(
            "{:<14} {:>6} {:>9} {:>10} {:>9} {:>8} {:>13}",
            name,
            snap.counter("replay.bids_placed").unwrap_or(0),
            snap.counter_family("replay.granted."),
            snap.counter("replay.death.out_of_bid").unwrap_or(0),
            snap.counter("replay.death.boundary").unwrap_or(0),
            snap.counter("replay.death.end_of_replay").unwrap_or(0),
            snap.counter("replay.same_minute_death").unwrap_or(0),
        );
    }

    println!("\n== observability: decision-making cost (Jupiter only) ==");
    let jupiter = &snapshots[0].1;
    // Interpolated quantile estimates smooth over the power-of-two
    // bucket bounds (`p50`/`p95` report the raw bucket upper bound).
    if let Some(h) = jupiter.histogram("jupiter.decide_micros") {
        println!(
            "decide():   {} calls, p50 {:.1} µs, p90 {:.1} µs, p99 {:.1} µs, max {} µs",
            h.count, h.p50_est, h.p90_est, h.p99_est, h.max
        );
    }
    if let Some(h) = jupiter.histogram("jupiter.forecast_micros") {
        println!(
            "forecast(): {} calls, p50 {:.1} µs, p90 {:.1} µs, p99 {:.1} µs, max {} µs",
            h.count, h.p50_est, h.p90_est, h.p99_est, h.max
        );
    }
    println!(
        "candidates: {} node counts evaluated, {} feasible",
        jupiter.counter("jupiter.candidates_evaluated").unwrap_or(0),
        jupiter.counter("jupiter.candidates_feasible").unwrap_or(0),
    );

    println!("\n== observability: the scenario registry (Prometheus exposition) ==");
    let combined = obs.metrics.snapshot();
    println!(
        "{} counters from {} cells in one registry; bids across all: {}; \
         kernels fitted {} / reused {}",
        combined.counters.len(),
        cells.len(),
        snapshots
            .iter()
            .map(|(name, _)| combined
                .counter(&format!("cell.{name}.{interval_hours}h.replay.bids_placed"))
                .unwrap_or(0))
            .sum::<u64>(),
        combined.counter("model_store.fits_performed").unwrap_or(0),
        combined.counter("model_store.fits_reused").unwrap_or(0),
    );
    for line in prometheus_text(&combined)
        .lines()
        .filter(|l| l.contains("bids_placed"))
    {
        println!("  {line}");
    }

    println!(
        "\nThe paper's claim, in miniature: only the failure-model-driven\n\
         bids hold the availability level, and they do so at a fraction of\n\
         the on-demand cost. Extra(0,p) is cheap but fails; Extra(2,p)\n\
         buys availability with two more instances and still falls short."
    );
}
