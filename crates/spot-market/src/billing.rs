//! EC2 billing rules, 2014 edition.
//!
//! The paper's cost results hinge on these rules (§2.1):
//!
//! * A spot instance is **charged hourly with the last spot price observed
//!   in each instance-hour**, not with the bid.
//! * If the **provider** terminates the instance (out-of-bid), the final
//!   partial hour is **free**.
//! * If the **user** terminates it, the final partial hour is charged in
//!   full, as with on-demand instances.
//! * On-demand instances are charged their fixed hourly price per *started*
//!   hour.

use serde::{Deserialize, Serialize};

use crate::money::Price;
use crate::trace::PriceTrace;

/// Who ended an instance's life.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Termination {
    /// Terminated by EC2 because the spot price exceeded the bid — the
    /// final partial hour is not charged.
    Provider,
    /// Terminated by the user (e.g. replaced at a bidding-interval
    /// boundary) — the final partial hour is charged in full.
    User,
}

/// Charge for a spot instance that ran over `[launch_min, end_min)` against
/// the zone's price trace.
///
/// Instance-hours are aligned to the launch minute. Every *full* hour is
/// charged at the last price within it. The trailing partial hour (if any)
/// is free for [`Termination::Provider`] and charged at its last observed
/// price for [`Termination::User`].
pub fn spot_charge(
    trace: &PriceTrace,
    launch_min: u64,
    end_min: u64,
    termination: Termination,
) -> Price {
    assert!(launch_min <= end_min, "negative lifetime");
    assert!(end_min <= trace.horizon(), "lifetime beyond trace horizon");
    let mut total = Price::ZERO;
    let mut hour_start = launch_min;
    while hour_start < end_min {
        let hour_end = hour_start + 60;
        if hour_end <= end_min {
            total += trace.last_price_in(hour_start, hour_end);
        } else {
            // Trailing partial hour.
            if termination == Termination::User {
                total += trace.last_price_in(hour_start, end_min);
            }
        }
        hour_start = hour_end;
    }
    total
}

/// Charge for an on-demand instance running `[launch_min, end_min)`:
/// the hourly price times the number of started hours.
pub fn on_demand_charge(hourly: Price, launch_min: u64, end_min: u64) -> Price {
    assert!(launch_min <= end_min, "negative lifetime");
    let minutes = end_min - launch_min;
    hourly * minutes.div_ceil(60)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::PricePoint;

    fn p(d: f64) -> Price {
        Price::from_dollars(d)
    }

    /// 3 hours: 0.010 for 90 min, 0.020 for 30 min, 0.008 for 60 min.
    fn trace() -> PriceTrace {
        PriceTrace::new(
            vec![
                PricePoint {
                    minute: 0,
                    price: p(0.010),
                },
                PricePoint {
                    minute: 90,
                    price: p(0.020),
                },
                PricePoint {
                    minute: 120,
                    price: p(0.008),
                },
            ],
            180,
        )
    }

    #[test]
    fn full_hours_charged_at_last_in_hour_price() {
        let t = trace();
        // Hour 1 ends at the 0.010 segment; hour 2 at 0.020→ last is 0.020?
        // minute 119 is in the 0.020 segment, so hour 2 charges 0.020;
        // hour 3 ends at 0.008.
        let c = spot_charge(&t, 0, 180, Termination::User);
        assert_eq!(c, p(0.010) + p(0.020) + p(0.008));
    }

    #[test]
    fn provider_kill_partial_hour_free() {
        let t = trace();
        // 90 minutes of life: one full hour (0.010) + 30 free minutes.
        let c = spot_charge(&t, 0, 90, Termination::Provider);
        assert_eq!(c, p(0.010));
    }

    #[test]
    fn user_kill_partial_hour_charged() {
        let t = trace();
        // Same 90 minutes, user kill: partial hour charged at its last
        // price (minute 89 → 0.010).
        let c = spot_charge(&t, 0, 90, Termination::User);
        assert_eq!(c, p(0.010) + p(0.010));
        // Partial hour spanning a price rise charges the *last* price.
        let c2 = spot_charge(&t, 60, 100, Termination::User);
        assert_eq!(c2, p(0.020));
    }

    #[test]
    fn hours_align_to_launch_not_wall_clock() {
        let t = trace();
        // Launch at minute 30: the first instance-hour is [30, 90) whose
        // last price (minute 89) is 0.010... minute 89 falls in the 0.010
        // segment [0,90). Second hour [90,150) last price at minute 149 is
        // 0.008.
        let c = spot_charge(&t, 30, 150, Termination::Provider);
        assert_eq!(c, p(0.010) + p(0.008));
    }

    #[test]
    fn zero_lifetime_costs_nothing() {
        let t = trace();
        assert_eq!(spot_charge(&t, 10, 10, Termination::User), Price::ZERO);
        assert_eq!(spot_charge(&t, 10, 10, Termination::Provider), Price::ZERO);
    }

    #[test]
    fn provider_kill_never_charges_more_than_user_kill() {
        let t = trace();
        for start in [0u64, 7, 30, 61] {
            for len in [0u64, 10, 59, 60, 61, 119, 120] {
                let end = start + len;
                if end > t.horizon() {
                    continue;
                }
                let pk = spot_charge(&t, start, end, Termination::Provider);
                let uk = spot_charge(&t, start, end, Termination::User);
                assert!(pk <= uk, "start={start} len={len}");
            }
        }
    }

    #[test]
    fn on_demand_rounds_up_started_hours() {
        let hourly = p(0.044);
        assert_eq!(on_demand_charge(hourly, 0, 0), Price::ZERO);
        assert_eq!(on_demand_charge(hourly, 0, 1), hourly);
        assert_eq!(on_demand_charge(hourly, 0, 60), hourly);
        assert_eq!(on_demand_charge(hourly, 0, 61), hourly * 2);
        assert_eq!(on_demand_charge(hourly, 30, 150), hourly * 2);
    }

    #[test]
    fn week_of_on_demand_matches_paper_scale() {
        // 5 m1.small at $0.044 for 168 h ≈ $36.96/week ⇒ the paper's
        // one-week baseline of ~$41 (Fig. 5) is the same order.
        let hourly = p(0.044);
        let c = on_demand_charge(hourly, 0, 7 * 24 * 60) * 5;
        assert!((c.as_dollars() - 36.96).abs() < 1e-9);
    }
}
