//! Time sources for trace timestamps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond clock. Implementations decide whether the
/// microseconds are wall time or simulated time.
pub trait Clock: Send + Sync {
    /// Current time in microseconds since this clock's origin.
    fn now_micros(&self) -> u64;

    /// Move a settable clock to `micros`. Default: no-op, so callers can
    /// drive any clock they are handed without downcasting; only
    /// [`ManualClock`] honors it.
    fn set_micros(&self, micros: u64) {
        let _ = micros;
    }
}

/// Wall time, measured from the moment the clock was created.
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock starting at zero now.
    pub fn new() -> WallClock {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> WallClock {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// A virtual clock advanced explicitly by the owner — the bridge between
/// simulated time (simnet `SimTime`, replay minutes) and trace
/// timestamps.
#[derive(Default)]
pub struct ManualClock {
    micros: AtomicU64,
}

impl ManualClock {
    /// A virtual clock at time zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Advance by `delta` microseconds.
    pub fn advance_micros(&self, delta: u64) {
        self.micros.fetch_add(delta, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::Relaxed)
    }

    fn set_micros(&self, micros: u64) {
        // Monotonic: concurrent setters never move time backwards.
        self.micros.fetch_max(micros, Ordering::Relaxed);
    }
}
