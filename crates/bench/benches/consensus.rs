//! Consensus-substrate benches: simulated Paxos lock-service commits and
//! RS-Paxos coded writes, measured as wall-clock cost of the simulation
//! (the substrate must be fast enough for week-scale service replays).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paxos::{ClientOp, Cluster, LockCmd, LockService, ReplicaConfig};
use simnet::{NetworkConfig, SimTime};
use storage::{RsCluster, RsConfig, StoreCmd};

fn lock_commits(c: &mut Criterion) {
    let mut g = c.benchmark_group("paxos_lock_commits");
    g.sample_size(10);
    for n in [3usize, 5, 7] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut cluster = Cluster::new(
                    n,
                    LockService::new(),
                    ReplicaConfig::default(),
                    NetworkConfig::ideal(),
                    42,
                );
                let client = cluster.add_client();
                for i in 0..20 {
                    cluster.submit(
                        client,
                        ClientOp::App(LockCmd::Acquire {
                            name: format!("l{i}"),
                            owner: client,
                        }),
                    );
                }
                assert!(cluster.run_until_drained(client, SimTime::from_secs(120)));
                cluster.sim.messages_delivered()
            })
        });
    }
    g.finish();
}

fn leader_failover(c: &mut Criterion) {
    let mut g = c.benchmark_group("paxos_failover");
    g.sample_size(10);
    g.bench_function("crash_and_recover_5", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(
                5,
                LockService::new(),
                ReplicaConfig::default(),
                NetworkConfig::ideal(),
                7,
            );
            let client = cluster.add_client();
            cluster.submit(
                client,
                ClientOp::App(LockCmd::Acquire {
                    name: "x".into(),
                    owner: client,
                }),
            );
            assert!(cluster.run_until_drained(client, SimTime::from_secs(60)));
            let leader = cluster.leader().expect("leader");
            cluster.crash(leader);
            cluster.submit(
                client,
                ClientOp::App(LockCmd::Acquire {
                    name: "y".into(),
                    owner: client,
                }),
            );
            assert!(cluster.run_until_drained(client, SimTime::from_secs(120)));
            cluster.sim.now()
        })
    });
    g.finish();
}

fn rs_paxos_puts(c: &mut Criterion) {
    let mut g = c.benchmark_group("rs_paxos_puts");
    g.sample_size(10);
    for size in [1024usize, 16 * 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                let mut cluster = RsCluster::new(5, RsConfig::default(), NetworkConfig::ideal(), 3);
                let client = cluster.add_client();
                for i in 0..10 {
                    cluster.submit(
                        client,
                        StoreCmd::Put {
                            key: format!("k{i}"),
                            object: Bytes::from(vec![i as u8; size]),
                        },
                    );
                }
                assert!(cluster.run_until_drained(client, SimTime::from_secs(120)));
            })
        });
    }
    g.finish();
}

criterion_group!(benches, lock_commits, leader_failover, rs_paxos_puts);
criterion_main!(benches);
