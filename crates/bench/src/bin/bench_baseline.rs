//! `bench-baseline` — the perf-baseline pipeline behind `ci.sh`.
//!
//! Criterion answers "how fast is this function"; this binary answers
//! "did the build get slower or do different work than the committed
//! baseline". It runs a fixed set of smoke-scale targets, records wall
//! time plus the key `obs` registry counters for each, and either writes
//! the result (`record`) or diffs it against a committed baseline
//! (`compare`):
//!
//! ```text
//! bench-baseline record  [--out PATH]                # default BENCH_replay.json
//! bench-baseline compare [--baseline PATH] [--threshold FRAC] [--strict]
//! ```
//!
//! `compare` re-runs the targets and reports two kinds of drift:
//!
//! * **wall-time regressions** — current > baseline × (1 + threshold);
//!   threshold defaults to 0.75 (smoke runs on shared CI hardware are
//!   noisy; the default only catches step-change regressions).
//! * **counter drift** — the work counters are deterministic (fixed
//!   seeds), so *any* mismatch means the build does different work than
//!   the baseline: an algorithm change that should be acknowledged by
//!   re-recording, or an accidental behavior change.
//!
//! Exit status is 0 unless `--strict` is set, in which case any drift
//! fails the run. Re-record with `bench-baseline record` after an
//! intentional perf or behavior change.

use std::time::Instant;

use bench::bench_market;
use jupiter::{ExtraStrategy, JupiterStrategy, ModelStore, ServiceSpec};
use obs::{Obs, TraceContext};
use replay::fleet::fleet_replay_observed;
use replay::service_level::{lock_service_replay_observed, ServiceReplayConfig};
use replay::{
    replay_repair_stored, replay_strategy_stored, RepairConfig, ReplayConfig, Scenario, SweepSpec,
};

const DEFAULT_BASELINE: &str = "BENCH_replay.json";
const DEFAULT_THRESHOLD: f64 = 0.75;
const FORMAT_VERSION: u64 = 1;

/// One target's measurement: wall time and its key work counters.
struct TargetResult {
    name: &'static str,
    wall_ms: f64,
    counters: Vec<(String, u64)>,
}

/// Counters whose prefix is in `keep`, in snapshot (sorted) order.
fn key_counters(obs: &Obs, keep: &[&str]) -> Vec<(String, u64)> {
    obs.metrics
        .snapshot()
        .counters
        .into_iter()
        .filter(|(name, _)| keep.iter().any(|p| name.starts_with(p)))
        .collect()
}

fn run_target(name: &'static str, keep: &[&str], f: impl FnOnce(&Obs)) -> TargetResult {
    let (obs, _clock) = Obs::simulated();
    let t0 = Instant::now();
    f(&obs);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    TargetResult {
        name,
        wall_ms,
        counters: key_counters(&obs, keep),
    }
}

/// The smoke-scale target set. Fixed seeds end to end: the counters are
/// deterministic, only the wall times vary run to run. With
/// `only = Some(name)` every other target is skipped entirely (used by
/// the CI gate to run the trace-overhead guard strict on its own).
fn run_all(only: Option<&str>) -> Vec<TargetResult> {
    let train = 2 * 7 * 24 * 60;
    let eval = 7 * 24 * 60;
    let want = |name: &str| only.is_none_or(|o| o == name);
    let mut out = Vec::new();

    if want("market_generate") {
        out.push(run_target("market_generate", &["market."], |obs| {
            let market = bench_market(3, 8);
            obs.counter("market.zones").add(market.zones().len() as u64);
            obs.counter("market.minutes").add(market.horizon());
        }));
    }
    if want("jupiter_replay") {
        out.push(run_target(
            "jupiter_replay",
            &["replay.bids_placed", "replay.death.", "jupiter.", "model_store.", "slo."],
            |obs| {
                let market = bench_market(3, 8);
                let spec = ServiceSpec::lock_service();
                let store = ModelStore::with_obs(obs.clone());
                let result = replay_strategy_stored(
                    &market,
                    &spec,
                    JupiterStrategy::new().with_obs(obs.clone()),
                    ReplayConfig::new(train, train + eval, 6),
                    &store,
                    obs,
                );
                assert!(result.window_minutes > 0);
            },
        ));
    }
    // The repair controller on a kill-prone heuristic: the compared
    // counters pin how many deaths the controller saw, how many spot
    // rebids vs on-demand escalations it answered with, and the
    // degraded-minute total — a drift in any of them means the repair
    // path does different work than the committed baseline.
    if want("repair_replay") {
        out.push(run_target(
            "repair_replay",
            &["replay.bids_placed", "replay.death.", "repair.", "slo."],
            |obs| {
                let market = bench_market(3, 8);
                let spec = ServiceSpec::lock_service();
                let store = ModelStore::with_obs(obs.clone());
                let result = replay_repair_stored(
                    &market,
                    &spec,
                    ExtraStrategy::new(0, 0.2),
                    ReplayConfig::new(train, train + eval, 6),
                    RepairConfig::hybrid(),
                    &store,
                    obs,
                );
                assert!(result.window_minutes > 0);
            },
        ));
    }
    // The scenario engine's training-reuse guarantee, as a compared
    // counter pair: a 2-strategy × 2-interval grid over 8 zones must
    // fit exactly 8 kernels (one per zone) and reuse them for the
    // other 3 cells. A regression that re-introduces per-cell
    // training shows up as `model_store.*` drift.
    if want("scenario_sweep") {
        out.push(run_target("scenario_sweep", &["model_store."], |obs| {
            let market = bench_market(3, 8);
            let scenario = Scenario::new(market, train, train + eval).with_obs(obs.clone());
            let sweep = SweepSpec::new(ServiceSpec::lock_service())
                .strategy(|o| Box::new(JupiterStrategy::new().with_obs(o.clone())))
                .strategy(|_| Box::new(ExtraStrategy::new(0, 0.2)))
                .intervals(vec![6, 12]);
            let cells = scenario.run(&sweep);
            assert_eq!(cells.len(), 4);
        }));
    }
    if want("fleet_replay") {
        out.push(run_target(
            "fleet_replay",
            &["fleet.", "replay.bids_placed"],
            |obs| {
                let market = bench_market(3, 8);
                let spec = ServiceSpec::lock_service();
                let fleet = fleet_replay_observed(
                    &market,
                    &spec,
                    2,
                    ReplayConfig::new(train, train + eval, 6),
                    |_| JupiterStrategy::new(),
                    obs,
                );
                assert_eq!(fleet.groups.len(), 2);
            },
        ));
    }
    // The tracer is live here (`Obs::simulated`), so the replay also
    // publishes `trace.*` counters: per-operation commit latency
    // assembled from the causal spans (exact p50/p99) plus orphan and
    // incompleteness counts. All of them are deterministic, so the
    // compare pins the *traced* behavior of the protocol, not just
    // its message counts.
    if want("lock_service_replay") {
        out.push(run_target(
            "lock_service_replay",
            &["paxos.msg_sent.", "paxos.elections_started", "service.", "slo.", "trace."],
            |obs| {
                let market = bench_market(3, 8);
                let service = lock_service_replay_observed(
                    &market,
                    JupiterStrategy::new().with_obs(obs.clone()),
                    ServiceReplayConfig {
                        eval_start: train,
                        window_minutes: 4 * 60,
                        interval_hours: 2,
                        sla_ms: 5_000,
                        seed: 4242,
                    },
                    obs,
                );
                assert!(service.ops_completed > 0);
            },
        ));
    }
    // The request-level workload engine at headline scale: ≥100k
    // open-loop lock-service requests (batched leader, 512 sessions)
    // plus a smaller batched RS-Paxos storage run. The pinned counters
    // are the request-level SLO figures themselves — request/completion
    // totals, p50/p99 scheduled→completion latency in µs, and the SLO
    // availability in ppm — so any change to batching, pipelining, or
    // the arrival streams shows up as counter drift, and a latency
    // regression fails compare outright.
    if want("workload_replay") {
        out.push(run_target(
            "workload_replay",
            &["workload.", "workload_store."],
            |obs| {
                use simnet::{NetworkConfig, SimTime};
                use workload::{run_lock_workload, run_storage_workload, ArrivalProcess, WorkloadSpec};
                let lock_spec = WorkloadSpec {
                    arrivals: ArrivalProcess::Poisson {
                        rate_per_sec: 1_000.0,
                    },
                    horizon: SimTime::from_secs(110),
                    sessions: 512,
                    population: 1_000_000,
                    seed: 2014,
                    batch_max_ops: 8,
                    ..WorkloadSpec::default()
                };
                let lock = run_lock_workload(&lock_spec, NetworkConfig::default(), obs);
                assert!(
                    lock.requests >= 100_000,
                    "headline workload must sustain 100k requests (got {})",
                    lock.requests
                );
                assert_eq!(lock.completed, lock.requests, "workload failed to drain");
                let store_spec = WorkloadSpec {
                    arrivals: ArrivalProcess::Poisson { rate_per_sec: 200.0 },
                    horizon: SimTime::from_secs(10),
                    sessions: 128,
                    population: 100_000,
                    seed: 2014,
                    batch_max_ops: 8,
                    ..WorkloadSpec::default()
                };
                let store = run_storage_workload(&store_spec, NetworkConfig::default(), obs);
                assert_eq!(store.completed, store.requests, "store workload failed to drain");
            },
        ));
    }
    // The heterogeneous-pool auto-scaled replay: a two-type market, the
    // mixed-pool lock service, and the load-driven auto-scaler
    // re-targeting fleet strength every 3 h against the diurnal demand
    // curve. The pinned counters are the scaling decisions themselves
    // (`autoscale.scale_out/scale_in/hold`) plus the bid volume and
    // death counts — drift in any of them means the controller or the
    // typed optimizer path does different work than the baseline.
    if want("hetero_replay") {
        out.push(run_target(
            "hetero_replay",
            &["replay.bids_placed", "replay.death.", "autoscale.", "model_store."],
            |obs| {
                use replay::experiments::{diurnal_rate, PER_STRENGTH_THROUGHPUT};
                use replay::{demand_series, replay_autoscale_stored, AutoScaler, AutoscaleConfig};
                use spot_market::{InstanceType, Market, MarketConfig};
                let mut cfg = MarketConfig::hetero_paper(8, train + eval);
                cfg.zones.truncate(8);
                let market = Market::generate(cfg);
                let spec = ServiceSpec::lock_service()
                    .with_pools(&[InstanceType::M1Small, InstanceType::M3Large]);
                let demand = demand_series(
                    diurnal_rate,
                    train,
                    train + eval,
                    60,
                    PER_STRENGTH_THROUGHPUT,
                );
                let mut scaler = AutoScaler::new(
                    AutoscaleConfig {
                        min_strength: 4,
                        max_strength: 24,
                        ..AutoscaleConfig::default()
                    },
                    demand,
                );
                let store = ModelStore::with_obs(obs.clone());
                let result = replay_autoscale_stored(
                    &market,
                    &spec,
                    JupiterStrategy::new().with_obs(obs.clone()),
                    ReplayConfig::new(train, train + eval, 3),
                    RepairConfig::off(),
                    |_| 180,
                    &store,
                    &mut scaler,
                    obs,
                );
                assert!(result.window_minutes > 0);
                let (outs, _ins) = scaler.scale_events();
                assert!(outs >= 1, "diurnal demand must force a scale-out");
            },
        ));
    }
    // The capacity-era migration replay: the same kill-prone heuristic
    // as `repair_replay`, but under the capacity-reclaim regime with the
    // proactive-migration controller answering interruption notices. The
    // pinned counters are the signal-handling totals (`notice.*`) and
    // the drain outcomes (`migrate.*`) — all seeded, so drift in any of
    // them means the notice plumbing or the drain/fallback controller
    // changed behavior.
    if want("era_replay") {
        out.push(run_target(
            "era_replay",
            &["replay.bids_placed", "replay.death.", "notice.", "migrate."],
            |obs| {
                use spot_market::BidEra;
                let market = bench_market(3, 8);
                let spec = ServiceSpec::lock_service();
                let store = ModelStore::with_obs(obs.clone());
                let result = replay_repair_stored(
                    &market,
                    &spec,
                    ExtraStrategy::new(0, 0.2),
                    ReplayConfig::new(train, train + eval, 6).with_era(BidEra::CapacityReclaim),
                    RepairConfig::migrate(),
                    &store,
                    obs,
                );
                assert!(result.window_minutes > 0);
            },
        ));
    }
    // Satellite guard: "disabled tracing is free". A tight loop of
    // inert span opens/closes and causal instants on a *disabled*
    // handle must stay in the low-nanosecond range per op — if the
    // disabled path ever grows an allocation or a lock, the per-op
    // cost jumps by orders of magnitude and the in-bench assertion
    // (plus the wall-time compare) fails the strict CI run. A short
    // enabled pass pins the recorded-event count as a deterministic
    // counter so compare also notices event-shape drift.
    if want("trace_overhead") {
        out.push(run_target("trace_overhead", &["trace_bench."], |obs| {
            const OPS: u64 = 4_000_000;
            let disabled = Obs::disabled();
            let t0 = Instant::now();
            for i in 0..OPS {
                let tctx = TraceContext {
                    trace_id: i | 1,
                    span_id: 0,
                };
                let span = disabled.trace.span_open_causal("bench.op", tctx, &[]);
                disabled.trace.event_causal("bench.mark", span.context(), &[]);
                disabled.trace.span_close(span, "bench.op", &[]);
            }
            let ns_per_op = t0.elapsed().as_nanos() as u64 / OPS;
            assert!(
                ns_per_op < 200,
                "disabled tracing costs {ns_per_op} ns/op (expected ~free)"
            );
            obs.counter("trace_bench.ops").add(OPS);
            let (enabled, _clock) = Obs::simulated();
            for i in 0..1_000u64 {
                let tctx = TraceContext {
                    trace_id: i + 1,
                    span_id: 0,
                };
                let span = enabled.trace.span_open_causal("bench.op", tctx, &[]);
                enabled.trace.event_causal("bench.mark", span.context(), &[]);
                enabled.trace.span_close(span, "bench.op", &[]);
            }
            obs.counter("trace_bench.recorded")
                .add(enabled.trace.events().len() as u64);
        }));
    }
    // Satellite guard: "disabled monitors are free". Every watchdog
    // observe and SLO sample on a disabled alert sink must short-circuit
    // on one boolean — the in-bench assertion fails the strict CI run if
    // the disabled path ever grows a lock or an allocation. A short
    // enabled pass drives a deterministic outage through the SLO tracker
    // so compare also pins the alert count.
    if want("monitor_overhead") {
        out.push(run_target("monitor_overhead", &["monitor_bench."], |obs| {
            use obs::{AlertSink, FleetDeficitWatchdog, LivenessWatchdog, SloSpec, SloTracker};
            const OPS: u64 = 2_000_000;
            let sink = AlertSink::disabled();
            let mut liveness = LivenessWatchdog::new(sink.clone(), 30_000_000);
            let mut fleet = FleetDeficitWatchdog::new(sink.clone());
            let mut slo = SloTracker::new(SloSpec::paper_availability(60), sink);
            let t0 = Instant::now();
            for i in 0..OPS {
                liveness.observe(i, 1);
                fleet.observe(i, 3, 5, 3, &[]);
                slo.record(i, 1.0, 1.0);
            }
            // Three observes per iteration; the bound is per iteration.
            let ns_per_op = t0.elapsed().as_nanos() as u64 / OPS;
            assert!(
                ns_per_op < 200,
                "disabled monitors cost {ns_per_op} ns/op (expected ~free)"
            );
            obs.counter("monitor_bench.ops").add(OPS);
            let enabled = AlertSink::new(64);
            let mut tracker =
                SloTracker::new(SloSpec::paper_availability(24 * 60), enabled.clone());
            for m in 0..600 {
                tracker.record(m, 1.0, 1.0);
            }
            for m in 600..660 {
                tracker.record(m, 0.0, 1.0);
            }
            obs.counter("monitor_bench.alerts").add(enabled.len() as u64);
        }));
    }
    out
}

// ---- JSON in/out --------------------------------------------------------

fn to_json(targets: &[TargetResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"version\": {FORMAT_VERSION},\n"));
    out.push_str("  \"targets\": {\n");
    for (i, t) in targets.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\n      \"wall_ms\": {:.3},\n      \"counters\": {{",
            t.name, t.wall_ms
        ));
        for (j, (name, v)) in t.counters.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n        \"{name}\": {v}"));
        }
        out.push_str("\n      }\n    }");
        if i + 1 < targets.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  }\n}\n");
    out
}

struct BaselineTarget {
    name: String,
    wall_ms: f64,
    counters: Vec<(String, u64)>,
}

struct Baseline {
    targets: Vec<BaselineTarget>,
}

fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let root = serde_json::parse_value(text).map_err(|e| e.to_string())?;
    let obj = root.as_object().ok_or("baseline root is not an object")?;
    let version = obj
        .iter()
        .find(|(k, _)| k == "version")
        .and_then(|(_, v)| v.as_u64())
        .ok_or("missing version")?;
    if version != FORMAT_VERSION {
        return Err(format!("unsupported baseline version {version}"));
    }
    let targets = obj
        .iter()
        .find(|(k, _)| k == "targets")
        .and_then(|(_, v)| v.as_object())
        .ok_or("missing targets object")?;
    let mut out = Vec::new();
    for (name, tv) in targets {
        let t = tv.as_object().ok_or("target is not an object")?;
        let wall_ms = t
            .iter()
            .find(|(k, _)| k == "wall_ms")
            .and_then(|(_, v)| v.as_f64())
            .ok_or_else(|| format!("{name}: missing wall_ms"))?;
        let counters: Vec<(String, u64)> = t
            .iter()
            .find(|(k, _)| k == "counters")
            .and_then(|(_, v)| v.as_object())
            .map(|entries| {
                entries
                    .iter()
                    .filter_map(|(k, v)| v.as_u64().map(|u| (k.clone(), u)))
                    .collect()
            })
            .unwrap_or_default();
        out.push(BaselineTarget {
            name: name.clone(),
            wall_ms,
            counters,
        });
    }
    Ok(Baseline { targets: out })
}

// ---- comparison ---------------------------------------------------------

/// Diff current against baseline. Returns the number of regressions.
fn compare(baseline: &Baseline, current: &[TargetResult], threshold: f64) -> usize {
    let mut issues = 0;
    for t in current {
        let Some(base) = baseline.targets.iter().find(|b| b.name == t.name) else {
            println!("  NEW     {:<22} {:>9.1} ms (not in baseline — re-record)", t.name, t.wall_ms);
            issues += 1;
            continue;
        };
        let ratio = t.wall_ms / base.wall_ms.max(1e-9);
        if ratio > 1.0 + threshold {
            println!(
                "  SLOWER  {:<22} {:>9.1} ms vs {:>9.1} ms baseline ({:+.0}%)",
                t.name,
                t.wall_ms,
                base.wall_ms,
                (ratio - 1.0) * 100.0
            );
            issues += 1;
        } else {
            println!(
                "  ok      {:<22} {:>9.1} ms vs {:>9.1} ms baseline ({:+.0}%)",
                t.name,
                t.wall_ms,
                base.wall_ms,
                (ratio - 1.0) * 100.0
            );
        }
        // Counter drift: deterministic seeds, so exact equality expected.
        for (name, base_v) in &base.counters {
            match t.counters.iter().find(|(n, _)| n == name) {
                Some((_, cur_v)) if cur_v == base_v => {}
                Some((_, cur_v)) => {
                    println!("  DRIFT   {:<22} {name}: {cur_v} vs {base_v} baseline", t.name);
                    issues += 1;
                }
                None => {
                    println!("  MISSING {:<22} {name}: gone (baseline {base_v})", t.name);
                    issues += 1;
                }
            }
        }
        for (name, cur_v) in &t.counters {
            if !base.counters.iter().any(|(n, _)| n == name) {
                println!("  NEW     {:<22} {name}: {cur_v} (not in baseline)", t.name);
                issues += 1;
            }
        }
    }
    for base in &baseline.targets {
        if !current.iter().any(|t| t.name == base.name) {
            println!("  MISSING {}: target no longer runs", base.name);
            issues += 1;
        }
    }
    issues
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "record".into());

    match mode.as_str() {
        "record" => {
            let out = flag_value(&args, "--out").unwrap_or_else(|| DEFAULT_BASELINE.into());
            println!("bench-baseline: recording smoke targets → {out}");
            let targets = run_all(None);
            for t in &targets {
                println!(
                    "  {:<22} {:>9.1} ms, {} counters",
                    t.name,
                    t.wall_ms,
                    t.counters.len()
                );
            }
            if let Err(e) = std::fs::write(&out, to_json(&targets)) {
                eprintln!("cannot write {out}: {e}");
                std::process::exit(1);
            }
        }
        "compare" => {
            let path = flag_value(&args, "--baseline").unwrap_or_else(|| DEFAULT_BASELINE.into());
            let threshold = flag_value(&args, "--threshold")
                .and_then(|s| s.parse::<f64>().ok())
                .unwrap_or(DEFAULT_THRESHOLD);
            let strict = args.iter().any(|a| a == "--strict");
            // `--only TARGET` restricts both the run and the baseline
            // side of the diff to one target.
            let only = flag_value(&args, "--only");
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read baseline {path}: {e}");
                    std::process::exit(1);
                }
            };
            let mut baseline = match parse_baseline(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("bad baseline {path}: {e}");
                    std::process::exit(1);
                }
            };
            if let Some(o) = only.as_deref() {
                baseline.targets.retain(|t| t.name == o);
            }
            println!(
                "bench-baseline: comparing against {path} (threshold {:.0}%{}{})",
                threshold * 100.0,
                if strict { ", strict" } else { "" },
                only.as_deref()
                    .map(|o| format!(", only {o}"))
                    .unwrap_or_default()
            );
            let current = run_all(only.as_deref());
            let issues = compare(&baseline, &current, threshold);
            if issues == 0 {
                println!("bench-baseline: no drift");
            } else {
                println!(
                    "bench-baseline: {issues} issue(s){}",
                    if strict {
                        ""
                    } else {
                        " (non-fatal; pass --strict to fail the build, \
                         or re-record after an intentional change)"
                    }
                );
                if strict {
                    std::process::exit(3);
                }
            }
        }
        other => {
            eprintln!("unknown mode `{other}` (expected `record` or `compare`)");
            std::process::exit(2);
        }
    }
}
