//! The market-level replay loop: bid, launch, die, bill, account.

use jupiter::framework::MarketSnapshot;
use jupiter::{BiddingFramework, BiddingStrategy, ModelKey, ModelStore, ServiceSpec};
use obs::{
    AuditKind, FieldValue, FleetDeficitWatchdog, Obs, RepairBudgetWatchdog, SloSpec, SloTracker,
};
use spot_market::{BidEra, InstanceType, Market, Price, Termination, Zone};
use spot_model::FrozenKernel;

use crate::autoscale::{AutoScaler, ObservedInterval};
use crate::repair::{RepairConfig, RepairPolicy};
use crate::results::{IntervalOutcome, ReplayResult};

pub use crate::results::InstanceRecord;

/// Replay parameters.
#[derive(Clone, Copy, Debug)]
pub struct ReplayConfig {
    /// Evaluation window start minute within the market horizon; the
    /// prefix `[0, eval_start)` trains the failure models.
    pub eval_start: u64,
    /// Evaluation window end minute (exclusive).
    pub eval_end: u64,
    /// Bidding interval in hours (the paper sweeps 1, 3, 6, 9, 12).
    pub interval_hours: u64,
    /// Decisions are made this many minutes before each boundary so that
    /// replacements finish booting by the boundary (§4: new instances are
    /// launched before the interval starts).
    pub decision_lead: u64,
    /// Which interruption regime resolves instance deaths. Under the
    /// default [`BidEra::Bidding`] the replay is byte-identical to the
    /// pre-era harness (kills at the first out-of-bid minute); under
    /// [`BidEra::CapacityReclaim`] bids become capped-price declarations
    /// and kills follow each pool's hidden capacity process, announced
    /// `lead` minutes ahead by an [`spot_market::InterruptionNotice`].
    pub era: BidEra,
}

impl ReplayConfig {
    /// A standard config: train on everything before `eval_start`,
    /// decide 15 minutes ahead of each boundary.
    pub fn new(eval_start: u64, eval_end: u64, interval_hours: u64) -> Self {
        assert!(eval_start < eval_end, "empty evaluation window");
        assert!(interval_hours >= 1, "interval must be at least an hour");
        ReplayConfig {
            eval_start,
            eval_end,
            interval_hours,
            decision_lead: 15,
            era: BidEra::Bidding,
        }
    }

    /// Select the interruption era (builder style); see
    /// [`ReplayConfig::era`].
    pub fn with_era(mut self, era: BidEra) -> Self {
        self.era = era;
        self
    }

    /// The minute of the first bidding decision — also the exclusive end
    /// of the training prefix the replay may reveal to the models. It
    /// depends only on the evaluation window, never on the strategy or
    /// interval, which is what lets every sweep cell share one
    /// [`jupiter::ModelStore`] entry per (zone, type).
    pub fn first_decision(&self) -> u64 {
        self.eval_start.saturating_sub(self.decision_lead).max(1)
    }
}

/// A live instance in the fleet.
#[derive(Clone, Debug)]
struct Active {
    zone: Zone,
    ty: InstanceType,
    bid: Price,
    granted_at: u64,
    running_from: u64,
    /// Precomputed death minute within the current interval: the first
    /// out-of-bid minute (bidding era) or the pool's next capacity
    /// reclamation (capacity era).
    dies_at: Option<u64>,
    /// Minute a proactive migration finished handing this instance's slot
    /// off to its replacement (the drain completing before the reclaim
    /// deadline). Availability stops counting the instance here — the
    /// replacement has taken over — while billing runs on to the kill,
    /// so the drain window is the only double-billed overlap.
    drained_at: Option<u64>,
}

/// An on-demand fallback instance launched by the repair controller. It
/// cannot be out-of-bid killed; it runs until the next boundary, where the
/// fresh spot decision replaces it.
#[derive(Clone, Debug)]
struct OnDemandActive {
    zone: Zone,
    hourly: Price,
    launched_at: u64,
    running_from: u64,
}

/// Replay one strategy over the market and return its accounting.
///
/// The framework's failure models are (re)trained on `[0, eval_start)`
/// and updated with each interval's observed prices as the replay
/// advances, mirroring the online data collection of Fig. 2.
pub fn replay_strategy<S: BiddingStrategy>(
    market: &Market,
    spec: &ServiceSpec,
    strategy: S,
    config: ReplayConfig,
) -> ReplayResult {
    replay_strategy_observed(market, spec, strategy, config, &Obs::disabled())
}

/// [`replay_strategy`] with observability: per-zone grant/termination
/// counters, out-of-bid vs end-of-replay death counts, per-interval
/// cost/availability gauges and a trace span per bidding interval (in
/// replay-minute sim time). When the result's metrics snapshot is
/// wanted, pass an enabled [`Obs`]; the returned
/// [`ReplayResult::metrics`] then carries the final snapshot.
pub fn replay_strategy_observed<S: BiddingStrategy>(
    market: &Market,
    spec: &ServiceSpec,
    strategy: S,
    config: ReplayConfig,
    obs: &Obs,
) -> ReplayResult {
    let interval = config.interval_hours * 60;
    replay_schedule_observed(market, spec, strategy, config, |_| interval, obs)
}

/// [`replay_strategy_observed`] with the training fit served from a shared
/// [`ModelStore`]: the kernel for each (zone, type, training-prefix) is
/// fitted at most once store-wide and installed by `Arc`, so concurrent
/// sweep cells over the same market pay for training once.
pub fn replay_strategy_stored<S: BiddingStrategy>(
    market: &Market,
    spec: &ServiceSpec,
    strategy: S,
    config: ReplayConfig,
    store: &ModelStore,
    obs: &Obs,
) -> ReplayResult {
    let interval = config.interval_hours * 60;
    replay_schedule_stored(market, spec, strategy, config, |_| interval, store, obs)
}

/// [`replay_strategy_stored`] with a mid-interval repair controller: when
/// `repair` is active, out-of-bid kills between boundaries trigger rebids
/// (and, under [`RepairPolicy::Hybrid`], on-demand fallbacks) instead of
/// leaving the quorum degraded until the next boundary. With
/// [`RepairConfig::off`] this is exactly [`replay_strategy_stored`].
pub fn replay_repair_stored<S: BiddingStrategy>(
    market: &Market,
    spec: &ServiceSpec,
    strategy: S,
    config: ReplayConfig,
    repair: RepairConfig,
    store: &ModelStore,
    obs: &Obs,
) -> ReplayResult {
    let interval = config.interval_hours * 60;
    replay_schedule_repair_stored(market, spec, strategy, config, repair, |_| interval, store, obs)
}

/// Replay with a dynamic interval schedule: `next_interval(boundary)`
/// returns the length in minutes of the interval starting at `boundary`.
/// This powers the paper's §5.5 extension (adapt the bidding interval to
/// the observed price-change frequency); `config.interval_hours` only
/// seeds the horizon passed to the first decision.
pub fn replay_schedule<S: BiddingStrategy>(
    market: &Market,
    spec: &ServiceSpec,
    strategy: S,
    config: ReplayConfig,
    next_interval: impl FnMut(u64) -> u64,
) -> ReplayResult {
    replay_schedule_observed(market, spec, strategy, config, next_interval, &Obs::disabled())
}

/// Replay-minute as trace microseconds.
fn minute_micros(minute: u64) -> u64 {
    minute.saturating_mul(60_000_000)
}

/// [`replay_schedule`] with observability (see
/// [`replay_strategy_observed`]). Training fits go through a private,
/// single-use [`ModelStore`]; callers replaying the same market many times
/// should use [`replay_schedule_stored`] with a shared store instead.
pub fn replay_schedule_observed<S: BiddingStrategy>(
    market: &Market,
    spec: &ServiceSpec,
    strategy: S,
    config: ReplayConfig,
    next_interval: impl FnMut(u64) -> u64,
    obs: &Obs,
) -> ReplayResult {
    let store = ModelStore::with_obs(obs.clone());
    replay_schedule_stored(market, spec, strategy, config, next_interval, &store, obs)
}

/// [`replay_schedule_observed`] with the training fit served from `store`
/// (see [`replay_strategy_stored`]). The replay's *online* refinement —
/// folding each interval's revealed prices into the models — forks the
/// shared kernels copy-on-write and never mutates the stored base.
pub fn replay_schedule_stored<S: BiddingStrategy>(
    market: &Market,
    spec: &ServiceSpec,
    strategy: S,
    config: ReplayConfig,
    next_interval: impl FnMut(u64) -> u64,
    store: &ModelStore,
    obs: &Obs,
) -> ReplayResult {
    replay_schedule_repair_stored(
        market,
        spec,
        strategy,
        config,
        RepairConfig::off(),
        next_interval,
        store,
        obs,
    )
}

/// [`replay_schedule_stored`] with the mid-interval repair controller
/// active (see [`replay_repair_stored`] and [`crate::repair`]). The
/// repair loop is event-driven: it walks the interval's out-of-bid kills
/// in time order, waits out the detection delay plus the current backoff,
/// re-snapshots the market, and re-runs the strategy's per-zone bid
/// selection for the missing slots only — against the models frozen at
/// the boundary, never retrained mid-interval. Slots the spot market
/// cannot fill escalate to on-demand under [`RepairPolicy::Hybrid`].
#[allow(clippy::too_many_arguments)]
pub fn replay_schedule_repair_stored<S: BiddingStrategy>(
    market: &Market,
    spec: &ServiceSpec,
    strategy: S,
    config: ReplayConfig,
    repair: RepairConfig,
    next_interval: impl FnMut(u64) -> u64,
    store: &ModelStore,
    obs: &Obs,
) -> ReplayResult {
    replay_core(
        market,
        spec,
        strategy,
        config,
        repair,
        next_interval,
        store,
        None,
        obs,
    )
}

/// [`replay_schedule_repair_stored`] with the load-driven auto-scaler in
/// the loop: before every boundary decision, `scaler` re-targets the
/// fleet's capacity-weighted strength from its demand forecast and the
/// previous interval's observed availability, and the target is installed
/// as the spec's strength floor
/// ([`jupiter::BiddingFramework::set_min_strength`]) so the optimizer
/// picks whichever pool mix reaches it cheapest. Scaling decisions land
/// in the audit log as `scale_decision` records.
#[allow(clippy::too_many_arguments)]
pub fn replay_autoscale_stored<S: BiddingStrategy>(
    market: &Market,
    spec: &ServiceSpec,
    strategy: S,
    config: ReplayConfig,
    repair: RepairConfig,
    next_interval: impl FnMut(u64) -> u64,
    store: &ModelStore,
    scaler: &mut AutoScaler,
    obs: &Obs,
) -> ReplayResult {
    replay_core(
        market,
        spec,
        strategy,
        config,
        repair,
        next_interval,
        store,
        Some(scaler),
        obs,
    )
}

#[allow(clippy::too_many_arguments)]
fn replay_core<S: BiddingStrategy>(
    market: &Market,
    spec: &ServiceSpec,
    strategy: S,
    config: ReplayConfig,
    repair: RepairConfig,
    mut next_interval: impl FnMut(u64) -> u64,
    store: &ModelStore,
    mut autoscaler: Option<&mut AutoScaler>,
    obs: &Obs,
) -> ReplayResult {
    assert!(config.eval_end <= market.horizon(), "window beyond market");
    let era = config.era;
    // Under the capacity era, interruptions are zone-correlated (whole-zone
    // capacity crunches reclaim several pools at once), so spread replicas
    // across zones with independent capacity processes.
    let diversified;
    let spec = if era == BidEra::CapacityReclaim && !spec.diversify {
        diversified = spec.clone().with_diversify(true);
        &diversified
    } else {
        spec
    };
    let bids_placed = obs.counter("replay.bids_placed");
    let death_out_of_bid = obs.counter("replay.death.out_of_bid");
    let death_boundary = obs.counter("replay.death.boundary");
    let death_end_of_replay = obs.counter("replay.death.end_of_replay");
    let same_minute_death = obs.counter("replay.same_minute_death");
    let interval_cost = obs.gauge("replay.interval_cost_upper_dollars");
    let interval_availability = obs.gauge("replay.interval_availability");
    // Repair-controller instruments (all stay at zero with repair off,
    // except degraded-minutes, which is the fleet-strength metric repair
    // exists to shrink and is counted under every policy).
    let repair_deaths_detected = obs.counter("repair.deaths_detected");
    let repair_rebids = obs.counter("repair.rebids");
    let repair_backoff_waits = obs.counter("repair.backoff_waits");
    let repair_spot_replacements = obs.counter("repair.spot_replacements");
    let repair_on_demand_launches = obs.counter("repair.on_demand_launches");
    let repair_on_demand_minutes = obs.counter("repair.on_demand_minutes");
    let repair_degraded_minutes = obs.counter("repair.degraded_minutes");
    let repair_budget_exhausted = obs.counter("repair.budget_exhausted");
    let repair_too_late = obs.counter("repair.too_late");
    // Capacity-era instruments (all stay at zero under the bidding era,
    // keeping bidding-era metric sets byte-identical).
    let notice_emitted = obs.counter("notice.emitted");
    let notice_rebalance = obs.counter("notice.rebalance");
    let migrate_launched = obs.counter("migrate.launched");
    let migrate_drained = obs.counter("migrate.drained");
    let migrate_late = obs.counter("migrate.late");
    let migrate_no_pool = obs.counter("migrate.no_pool");
    let migrate_no_grant = obs.counter("migrate.no_grant");
    let drain_margin_series = obs.series.series("migrate.drain_margin_minutes");
    // Per-interval time series (time axis: market minutes). Per-zone
    // price/bid series are looked up per interval since zones vary.
    let fleet_series = obs.series.series("replay.fleet_size");
    let cost_series = obs.series.series("replay.interval_cost_upper_dollars");
    let availability_series = obs.series.series("replay.interval_availability");
    let deaths_series = obs.series.series("replay.deaths");
    let degraded_series = obs.series.series("repair.degraded_minutes");
    let rebids_series = obs.series.series("repair.rebids");
    // Online monitors: the paper's 0.99 availability SLO evaluated per
    // accounted minute with burn-rate alerting, plus the fleet-strength
    // and repair-budget watchdogs. All of it is inert (a boolean check)
    // when `obs.alerts` is disabled — the `monitor_overhead` bench gate
    // pins that.
    let monitors_on = obs.alerts.is_enabled();
    let mut slo = SloTracker::new(
        SloSpec::paper_availability(config.eval_end - config.eval_start),
        obs.alerts.clone(),
    );
    let mut fleet_dog = FleetDeficitWatchdog::new(obs.alerts.clone());
    let mut budget_dog = RepairBudgetWatchdog::new(obs.alerts.clone());
    // The FP-cache hit counter lives in the strategy's registry; when the
    // caller wires the same `Obs` into both (the repro/report path), the
    // delta around a decide tells the audit log whether the decision was
    // served from cache.
    let fp_cache_hits = obs.counter("jupiter.fp_cache_hits");
    let primary_ty = spec.instance_type;
    let pools: Vec<InstanceType> = spec.pools();
    let hetero = spec.is_hetero();
    let zones: Vec<Zone> = market.zones().to_vec();
    // On-demand fallbacks run the primary type in the cheapest on-demand
    // zone (ties broken by zone order), mirroring
    // `on_demand_baseline_cost`.
    let od_zone = zones
        .iter()
        .copied()
        .min_by_key(|z| (primary_ty.on_demand_price(z.region), z.ordinal()))
        .expect("market has zones");
    let od_hourly = primary_ty.on_demand_price(od_zone.region);

    // Train only on the revealed prefix — the replay must never peek at
    // future prices; each interval's observations are folded in below.
    // The first decision happens `decision_lead` minutes before the
    // window, so history is revealed up to that point only. The fit is
    // keyed by (zone, type, prefix end) in the store, so every replay of
    // the same market window reuses one shared kernel per zone.
    let first_decision = config.first_decision();
    let mut framework = BiddingFramework::new(spec.clone(), strategy);
    for &z in &zones {
        for &ty in &pools {
            let key = ModelKey {
                zone: z,
                instance_type: ty,
                trained_until: first_decision,
            };
            let kernel = store.get_or_fit(key, || {
                FrozenKernel::from_trace(&market.trace(z, ty).window(0, first_decision))
            });
            framework.install_kernel(z, ty, kernel);
        }
    }
    let mut observed_until = first_decision;

    let mut fleet: Vec<Active> = Vec::new();
    let mut records: Vec<InstanceRecord> = Vec::new();
    let mut intervals: Vec<IntervalOutcome> = Vec::new();
    let mut up_minutes_total = 0u64;
    let mut degraded_minutes_total = 0u64;
    let mut on_demand_cost_total = Price::ZERO;
    let mut last_interval_obs: Option<ObservedInterval> = None;

    let mut boundary = config.eval_start;
    while boundary < config.eval_end {
        let interval = next_interval(boundary).max(60);
        let interval_end = (boundary + interval).min(config.eval_end);
        obs.set_time_micros(minute_micros(boundary));
        budget_dog.interval_start();
        // ---- decide shortly before the boundary -------------------------
        let decision_at = boundary.saturating_sub(config.decision_lead);
        if decision_at > observed_until {
            for &z in &zones {
                for &ty in &pools {
                    framework
                        .observe(z, ty, &market.trace(z, ty).window(observed_until, decision_at));
                }
            }
            observed_until = decision_at;
        }
        // Auto-scaling: re-target the strength floor before the decision,
        // from the demand forecast for this interval and the feedback of
        // the one that just ended.
        if let Some(scaler) = autoscaler.as_mut() {
            let target = scaler.plan(boundary, interval_end, last_interval_obs.take(), obs);
            framework.set_min_strength(target);
        }
        let mut snapshots: Vec<MarketSnapshot> = Vec::with_capacity(zones.len() * pools.len());
        for &z in &zones {
            for &ty in &pools {
                let t = market.trace(z, ty);
                snapshots.push(MarketSnapshot {
                    zone: z,
                    instance_type: ty,
                    spot_price: t.price_at(decision_at),
                    sojourn_age: t.sojourn_age_at(decision_at).min(u32::MAX as u64) as u32,
                });
            }
        }
        let hits_before = fp_cache_hits.get();
        let decision = framework.decide(&snapshots, interval as u32);
        let fp_cache_hit = fp_cache_hits.get() > hits_before;
        bids_placed.add(decision.bids.len() as u64);
        if obs.series.is_enabled() {
            // The Fig. 4/7 raw material: spot price per zone and the
            // active bid wherever one is standing, both at decision time.
            for s in &snapshots {
                let name = if hetero {
                    format!("replay.price.{}.{}", s.zone, s.instance_type)
                } else {
                    format!("replay.price.{}", s.zone)
                };
                obs.series.record(&name, boundary, s.spot_price.as_dollars());
            }
            for pb in &decision.bids {
                let name = if hetero {
                    format!("replay.bid.{}.{}", pb.zone, pb.instance_type)
                } else {
                    format!("replay.bid.{}", pb.zone)
                };
                obs.series.record(&name, boundary, pb.bid.as_dollars());
            }
        }
        let interval_span = obs.trace.span(
            "replay.interval",
            &[
                ("start", FieldValue::U64(boundary)),
                ("group", FieldValue::U64(decision.n() as u64)),
            ],
        );

        // ---- retire the old fleet at the boundary ------------------------
        // An instance carries over when the new decision keeps its zone
        // and its standing bid is at least the newly required one (EC2
        // bids are immutable per instance, and a higher standing bid is at
        // least as protective — charges follow the spot price, not the
        // bid, so keeping it costs nothing extra and avoids paying the
        // churn overlap). Everything else is user-terminated.
        let mut kept: Vec<Active> = Vec::new();
        for inst in fleet.drain(..) {
            let keep = decision
                .bid_for(inst.zone, inst.ty)
                .map(|b| b <= inst.bid)
                .unwrap_or(false)
                && inst.dies_at.is_none();
            if keep {
                kept.push(inst);
            } else {
                let end = inst.dies_at.unwrap_or(boundary).min(boundary);
                let termination = if inst.dies_at.map(|d| d < boundary).unwrap_or(false) {
                    Termination::Provider
                } else {
                    Termination::User
                };
                match termination {
                    Termination::Provider => death_out_of_bid.inc(),
                    Termination::User => death_boundary.inc(),
                }
                obs.counter(&format!("replay.terminated.{}", inst.zone)).inc();
                records.push(close_instance(market, &inst, end, termination));
            }
        }
        fleet = kept;

        // ---- launch the new fleet ----------------------------------------
        for pb in &decision.bids {
            if fleet
                .iter()
                .any(|a| a.zone == pb.zone && a.ty == pb.instance_type)
            {
                continue; // carried over
            }
            // The request is granted only when the bid covers the price at
            // request time.
            if !market.grants(pb.zone, pb.instance_type, pb.bid, decision_at) {
                continue;
            }
            let delay = market.startup_delay_minutes_typed(pb.zone, pb.instance_type, decision_at);
            let running_from = decision_at + delay;
            obs.counter(&format!("replay.granted.{}", pb.zone)).inc();
            fleet.push(Active {
                zone: pb.zone,
                ty: pb.instance_type,
                bid: pb.bid,
                granted_at: decision_at,
                running_from,
                dies_at: None,
                drained_at: None,
            });
        }
        // Per-pool fleet composition series (heterogeneous runs only, so
        // single-type replays keep their exact legacy series set).
        if hetero && obs.series.is_enabled() {
            for &ty in &pools {
                let count = fleet.iter().filter(|a| a.ty == ty).count();
                obs.series
                    .record(&format!("pool.fleet.{ty}"), boundary, count as f64);
            }
            let strength: u32 = fleet.iter().map(|a| a.ty.capacity_weight()).sum();
            obs.series.record("pool.strength", boundary, strength as f64);
        }

        // ---- audit the decision ------------------------------------------
        // One record per selected bid, enriched with the model view the
        // bid came from; `granted` is known now the launch pass ran
        // (carried-over instances count as granted).
        let mut interval_refs: Vec<u64> = Vec::new();
        if obs.audit.is_enabled() {
            let horizon_hours = interval as f64 / 60.0;
            for pb in &decision.bids {
                let snap = snapshots
                    .iter()
                    .find(|s| s.zone == pb.zone && s.instance_type == pb.instance_type);
                let fp = snap.and_then(|s| framework.predicted_fp(s, pb.bid, interval as u32));
                let seq = obs.audit.record(
                    decision_at,
                    AuditKind::BidSelection {
                        zone: pb.zone.to_string(),
                        instance_type: pb.instance_type.to_string(),
                        capacity_weight: pb.instance_type.capacity_weight() as f64,
                        bid_dollars: pb.bid.as_dollars(),
                        spot_price_dollars: snap.map_or(0.0, |s| s.spot_price.as_dollars()),
                        predicted_availability: fp.map_or(-1.0, |p| 1.0 - p),
                        predicted_cost_dollars: pb.bid.as_dollars() * horizon_hours,
                        kernel_id: framework
                            .model(pb.zone, pb.instance_type)
                            .map_or(0, |m| m.kernel().fingerprint()),
                        fp_cache_hit,
                        granted: fleet
                            .iter()
                            .any(|a| a.zone == pb.zone && a.ty == pb.instance_type),
                    },
                );
                if let Some(seq) = seq {
                    interval_refs.push(seq);
                    slo.link_decision(seq);
                }
            }
        }

        // ---- resolve deaths within the interval --------------------------
        // Bidding era: the first minute the price strictly exceeds the
        // bid. Capacity era: the pool's next hidden-capacity reclamation
        // — the bid plays no part in survival, only in the grant gate.
        let mut kills = 0usize;
        for inst in &mut fleet {
            inst.dies_at = match era {
                BidEra::Bidding => market.out_of_bid_at(
                    inst.zone,
                    inst.ty,
                    inst.bid,
                    inst.granted_at.max(boundary),
                    interval_end,
                ),
                BidEra::CapacityReclaim => market.next_reclaim_at(
                    inst.zone,
                    inst.ty,
                    inst.granted_at.max(boundary),
                    interval_end,
                ),
            };
            inst.drained_at = None;
            if let Some(d) = inst.dies_at {
                kills += 1;
                if d <= inst.granted_at {
                    // Granted and killed in the same minute: the bid only
                    // just covered the price at request time.
                    same_minute_death.inc();
                }
            }
        }

        // ---- proactive migration on interruption notices -----------------
        // Under the capacity era every reclamation is announced `lead`
        // minutes ahead, with rebalance recommendations earlier still. The
        // Migrate policy acts on the earliest actionable signal: it
        // launches a replacement in a diversified pool (excluding pools
        // under imminent reclaim, preferring a different zone) and, when
        // the replacement is running before the deadline, drains the
        // victim's slot — the service-level Paxos view change; here the
        // handoff in the slot accounting. Deaths the notice path cannot
        // cover (no pool, grant refused, signal past the boundary) fall
        // through to the reactive walk below, which sees their slots
        // still missing.
        let target_n = fleet.len();
        if era == BidEra::CapacityReclaim {
            notice_emitted.add(market.notices_in(boundary, interval_end).len() as u64);
            notice_rebalance.add(market.rebalances_in(boundary, interval_end).len() as u64);
        }
        if era == BidEra::CapacityReclaim
            && repair.policy == RepairPolicy::Migrate
            && !fleet.is_empty()
        {
            // How far before the deadline a rebalance recommendation is
            // still worth acting on (older signals would buy overlap
            // billing without improving the drain), and how far past the
            // victim's deadline a candidate pool's own reclamation makes
            // it unfit as the replacement's home.
            const REBALANCE_WINDOW: u64 = 45;
            const RECLAIM_GUARD: u64 = 60;
            let mut deaths: Vec<(usize, u64)> = fleet
                .iter()
                .enumerate()
                .filter_map(|(i, inst)| inst.dies_at.map(|d| (i, d)))
                .collect();
            deaths.sort_by_key(|&(i, d)| (d, i));
            // Pools of victims the notice path could not cover: once a
            // victim falls through to the reactive walk, its own pool —
            // free again after its reclamation passes — is the walk's
            // natural repair site, and a later migration stealing it
            // would starve the fallback (the steal shows up as degraded
            // time the pure-reactive replay never accrues).
            let mut reserved: Vec<(Zone, InstanceType)> = Vec::new();
            for (victim_idx, deadline) in deaths {
                let (vzone, vty) = (fleet[victim_idx].zone, fleet[victim_idx].ty);
                let lead = market.capacity(vzone, vty).lead();
                let notice_at = deadline.saturating_sub(lead).max(boundary);
                let floor = deadline.saturating_sub(REBALANCE_WINDOW).max(boundary);
                let launch_at = market
                    .capacity(vzone, vty)
                    .last_rebalance_before(deadline, floor)
                    .map_or(notice_at, |r| r.max(boundary));
                if launch_at >= interval_end {
                    continue; // the next boundary re-decides anyway
                }
                // Re-ask the framework at the signal minute; candidates
                // outside the victim's zone come first at equal price.
                let mut snapshots: Vec<MarketSnapshot> =
                    Vec::with_capacity(zones.len() * pools.len());
                for &z in &zones {
                    for &ty in &pools {
                        let t = market.trace(z, ty);
                        snapshots.push(MarketSnapshot {
                            zone: z,
                            instance_type: ty,
                            spot_price: t.price_at(launch_at),
                            sojourn_age: t.sojourn_age_at(launch_at).min(u32::MAX as u64) as u32,
                        });
                    }
                }
                let decision = framework.decide(&snapshots, (interval_end - launch_at) as u32);
                let mut choices = decision.bids;
                choices.sort_by_key(|pb| {
                    (pb.zone == vzone, pb.bid, pb.zone.ordinal(), pb.instance_type.ordinal())
                });
                let mut action = "no_pool";
                let mut to_zone = String::new();
                let mut bid_dollars = 0.0;
                for pb in choices {
                    let occupied = fleet.iter().enumerate().any(|(i, inst)| {
                        i != victim_idx
                            && inst.zone == pb.zone
                            && inst.ty == pb.instance_type
                            && inst.dies_at.map(|d| d > launch_at).unwrap_or(true)
                    });
                    // A pool the provider is about to reclaim (the
                    // victim's own included) is no home for the refugee.
                    let imminent = market
                        .next_reclaim_at(
                            pb.zone,
                            pb.instance_type,
                            launch_at,
                            deadline + RECLAIM_GUARD,
                        )
                        .is_some();
                    if occupied || imminent || reserved.contains(&(pb.zone, pb.instance_type)) {
                        continue;
                    }
                    if !market.grants(pb.zone, pb.instance_type, pb.bid, launch_at) {
                        action = "no_grant";
                        continue;
                    }
                    let delay =
                        market.startup_delay_minutes_typed(pb.zone, pb.instance_type, launch_at);
                    let running_from = launch_at + delay;
                    let dies_at =
                        market.next_reclaim_at(pb.zone, pb.instance_type, launch_at, interval_end);
                    if dies_at.is_some() {
                        kills += 1;
                    }
                    migrate_launched.inc();
                    bids_placed.inc();
                    obs.counter(&format!("replay.granted.{}", pb.zone)).inc();
                    to_zone = pb.zone.to_string();
                    bid_dollars = pb.bid.as_dollars();
                    if running_from <= deadline {
                        action = "drained";
                        fleet[victim_idx].drained_at = Some(running_from);
                        migrate_drained.inc();
                        drain_margin_series.record(deadline, (deadline - running_from) as f64);
                    } else {
                        action = "late_drain";
                        migrate_late.inc();
                    }
                    fleet.push(Active {
                        zone: pb.zone,
                        ty: pb.instance_type,
                        bid: pb.bid,
                        granted_at: launch_at,
                        running_from,
                        dies_at,
                        drained_at: None,
                    });
                    break;
                }
                match action {
                    "no_pool" => migrate_no_pool.inc(),
                    "no_grant" => migrate_no_grant.inc(),
                    _ => {}
                }
                if action == "no_pool" || action == "no_grant" {
                    reserved.push((vzone, vty));
                }
                if let Some(seq) = obs.audit.record(
                    launch_at,
                    AuditKind::Migration {
                        action: action.to_owned(),
                        from_zone: vzone.to_string(),
                        to_zone,
                        notice_minute: notice_at,
                        deadline_minute: deadline,
                        bid_dollars,
                    },
                ) {
                    interval_refs.push(seq);
                    slo.link_decision(seq);
                }
            }
        }

        // ---- mid-interval repair -----------------------------------------
        // Walk the interval's kills in time order. Each pass waits out the
        // detection delay plus the current backoff, then refills the fleet
        // to its interval-start strength: first from the spot market (a
        // fresh decide against the boundary-frozen models — the kernels
        // are never retrained mid-interval, so boundary decisions are
        // identical across repair policies), then from on-demand under
        // Hybrid. Replacements can die and be repaired again; the cursor
        // only moves forward, so the loop terminates. Under Migrate this
        // walk is the reactive fallback: migrated slots are already
        // filled, so it only acts where the notice path came up empty.
        let mut on_demand: Vec<OnDemandActive> = Vec::new();
        let rebids_before = repair_rebids.get();
        if repair.is_active() && !fleet.is_empty() {
            let mut rebids_used = 0u32;
            let mut wait = repair.backoff_base_minutes;
            let mut cursor = boundary;
            while let Some(died_at) = fleet
                .iter()
                .filter_map(|i| i.dies_at)
                .filter(|&d| d >= cursor)
                .min()
            {
                let at = died_at + repair.detection_delay_minutes + wait;
                if at >= interval_end {
                    // Too close to the boundary to act before the next
                    // decision — and every later kill is later still.
                    let unrepaired = fleet
                        .iter()
                        .filter(|i| i.dies_at.map(|d| d >= cursor).unwrap_or(false))
                        .count() as u64;
                    repair_deaths_detected.add(unrepaired);
                    repair_too_late.add(unrepaired);
                    if let Some(seq) = obs.audit.record(
                        died_at,
                        AuditKind::RepairAction {
                            action: "too_late".to_owned(),
                            zone: String::new(),
                            trigger_death_minute: died_at,
                            bid_dollars: 0.0,
                            billing_delta_dollars: 0.0,
                        },
                    ) {
                        interval_refs.push(seq);
                    }
                    break;
                }
                repair_deaths_detected.add(
                    fleet
                        .iter()
                        .filter_map(|i| i.dies_at)
                        .filter(|&d| d >= cursor && d <= at)
                        .count() as u64,
                );
                // Strength at repair time: live or still-booting spot
                // instances plus standing on-demand fallbacks. A drained
                // victim stops counting at its handoff — its replacement
                // already holds the slot, and counting both would mask a
                // concurrent death elsewhere from the refill. Migration
                // replacements scheduled for a *later* signal minute have
                // not been granted yet and hold nothing either.
                let alive = fleet
                    .iter()
                    .filter(|i| {
                        i.granted_at <= at
                            && i.dies_at
                                .unwrap_or(u64::MAX)
                                .min(i.drained_at.unwrap_or(u64::MAX))
                                > at
                    })
                    .count()
                    + on_demand.len();
                let missing = target_n.saturating_sub(alive);
                if missing == 0 {
                    cursor = at + 1;
                    continue;
                }
                let mut launched = 0usize;
                if rebids_used < repair.max_rebids_per_interval {
                    rebids_used += 1;
                    repair_rebids.inc();
                    let mut snapshots: Vec<MarketSnapshot> =
                        Vec::with_capacity(zones.len() * pools.len());
                    for &z in &zones {
                        for &ty in &pools {
                            let t = market.trace(z, ty);
                            snapshots.push(MarketSnapshot {
                                zone: z,
                                instance_type: ty,
                                spot_price: t.price_at(at),
                                sojourn_age: t.sojourn_age_at(at).min(u32::MAX as u64) as u32,
                            });
                        }
                    }
                    let rebid = framework.decide(&snapshots, (interval_end - at) as u32);
                    let mut choices = rebid.bids;
                    choices.sort_by_key(|pb| (pb.bid, pb.zone.ordinal(), pb.instance_type.ordinal()));
                    for pb in choices {
                        let (zone, rty, bid) = (pb.zone, pb.instance_type, pb.bid);
                        if launched >= missing {
                            break;
                        }
                        let occupied = fleet.iter().any(|i| {
                            i.zone == zone
                                && i.ty == rty
                                && i.dies_at.map(|d| d > at).unwrap_or(true)
                        }) || on_demand.iter().any(|o| o.zone == zone);
                        if occupied || !market.grants(zone, rty, bid, at) {
                            continue;
                        }
                        let delay = market.startup_delay_minutes_typed(zone, rty, at);
                        let dies_at = match era {
                            BidEra::Bidding => {
                                market.out_of_bid_at(zone, rty, bid, at, interval_end)
                            }
                            BidEra::CapacityReclaim => {
                                market.next_reclaim_at(zone, rty, at, interval_end)
                            }
                        };
                        if dies_at.is_some() {
                            kills += 1;
                        }
                        obs.counter(&format!("replay.granted.{zone}")).inc();
                        repair_spot_replacements.inc();
                        bids_placed.inc();
                        if let Some(seq) = obs.audit.record(
                            at,
                            AuditKind::RepairAction {
                                action: "rebid".to_owned(),
                                zone: zone.to_string(),
                                trigger_death_minute: died_at,
                                bid_dollars: bid.as_dollars(),
                                billing_delta_dollars: bid.as_dollars()
                                    * ((interval_end - at) as f64 / 60.0),
                            },
                        ) {
                            interval_refs.push(seq);
                            slo.link_decision(seq);
                        }
                        fleet.push(Active {
                            zone,
                            ty: rty,
                            bid,
                            granted_at: at,
                            running_from: at + delay,
                            dies_at,
                            drained_at: None,
                        });
                        launched += 1;
                    }
                } else {
                    repair_budget_exhausted.inc();
                    if let Some(seq) = obs.audit.record(
                        at,
                        AuditKind::RepairAction {
                            action: "budget_exhausted".to_owned(),
                            zone: String::new(),
                            trigger_death_minute: died_at,
                            bid_dollars: 0.0,
                            billing_delta_dollars: 0.0,
                        },
                    ) {
                        interval_refs.push(seq);
                    }
                    budget_dog.exhausted(
                        minute_micros(at),
                        repair.max_rebids_per_interval,
                        &interval_refs,
                    );
                }
                if launched < missing && repair.policy == RepairPolicy::Hybrid {
                    // Escalate: the per-node target cannot be met from the
                    // spot market right now, so fall back to on-demand for
                    // the remaining slots until the next boundary.
                    for _ in launched..missing {
                        let delay = market.startup_delay_minutes_typed(od_zone, primary_ty, at);
                        repair_on_demand_launches.inc();
                        if let Some(seq) = obs.audit.record(
                            at,
                            AuditKind::RepairAction {
                                action: "on_demand_top_up".to_owned(),
                                zone: od_zone.to_string(),
                                trigger_death_minute: died_at,
                                bid_dollars: od_hourly.as_dollars(),
                                billing_delta_dollars: spot_market::on_demand_charge(
                                    od_hourly,
                                    at,
                                    interval_end,
                                )
                                .as_dollars(),
                            },
                        ) {
                            interval_refs.push(seq);
                            slo.link_decision(seq);
                        }
                        on_demand.push(OnDemandActive {
                            zone: od_zone,
                            hourly: od_hourly,
                            launched_at: at,
                            running_from: at + delay,
                        });
                    }
                    launched = missing;
                }
                if launched < missing {
                    repair_backoff_waits.inc();
                    if let Some(seq) = obs.audit.record(
                        at,
                        AuditKind::RepairAction {
                            action: "backoff".to_owned(),
                            zone: String::new(),
                            trigger_death_minute: died_at,
                            bid_dollars: 0.0,
                            billing_delta_dollars: 0.0,
                        },
                    ) {
                        interval_refs.push(seq);
                    }
                    wait = wait.saturating_mul(2).min(repair.backoff_cap_minutes);
                } else {
                    wait = repair.backoff_base_minutes;
                }
                cursor = at + 1;
            }
        }

        // ---- availability accounting minute by minute --------------------
        let group = decision.n();
        let quorum = if group == 0 {
            usize::MAX // no deployment: never available
        } else {
            spec.quorum.quorum_size(group)
        };
        let mut up = 0u64;
        let mut degraded = 0u64;
        let mut max_live = 0usize;
        let mut strength_minutes = 0f64;
        let mut minute = boundary;
        while minute < interval_end {
            // Count live instances; advance to the next state change to
            // avoid per-minute scans over long quiet stretches.
            let mut live = 0usize;
            let mut live_strength = 0u32;
            let mut next_change = interval_end;
            for inst in &fleet {
                let alive_from = inst.running_from;
                // A drained victim's slot belongs to its replacement from
                // the handoff minute on; billing still runs to the kill.
                let dead_at = inst
                    .dies_at
                    .unwrap_or(u64::MAX)
                    .min(inst.drained_at.unwrap_or(u64::MAX));
                if minute >= alive_from && minute < dead_at {
                    live += 1;
                    live_strength += inst.ty.capacity_weight();
                    next_change = next_change.min(dead_at);
                } else if minute < alive_from {
                    next_change = next_change.min(alive_from);
                }
            }
            for od in &on_demand {
                if minute >= od.running_from {
                    live += 1;
                    live_strength += primary_ty.capacity_weight();
                } else {
                    next_change = next_change.min(od.running_from);
                }
            }
            let span = next_change.max(minute + 1) - minute;
            strength_minutes += live_strength as f64 * span as f64;
            if live >= quorum {
                up += span;
            }
            if live < group {
                degraded += span;
            }
            if monitors_on {
                if group > 0 {
                    fleet_dog.observe(minute_micros(minute), live, group, quorum, &interval_refs);
                }
                // The SLO stream wants per-minute granularity so burn
                // windows stay exact across long quiet spans.
                let good = if live >= quorum { 1.0 } else { 0.0 };
                for m in minute..minute + span {
                    slo.record(m, good, 1.0);
                }
            }
            max_live = max_live.max(live);
            minute += span;
        }
        up_minutes_total += up;
        degraded_minutes_total += degraded;
        repair_degraded_minutes.add(degraded);
        let availability = up as f64 / (interval_end - boundary).max(1) as f64;
        if autoscaler.is_some() {
            last_interval_obs = Some(ObservedInterval {
                availability,
                mean_strength: strength_minutes / (interval_end - boundary).max(1) as f64,
            });
        }
        interval_cost.set(decision.cost_upper_bound().as_dollars());
        interval_availability.set(availability);
        fleet_series.record(boundary, fleet.len() as f64);
        cost_series.record(boundary, decision.cost_upper_bound().as_dollars());
        availability_series.record(boundary, availability);
        deaths_series.record(boundary, kills as f64);
        degraded_series.record(boundary, degraded as f64);
        rebids_series.record(boundary, (repair_rebids.get() - rebids_before) as f64);
        intervals.push(IntervalOutcome {
            start: boundary,
            group_size: group,
            quorum: if group == 0 { 0 } else { quorum },
            cost_upper_bound: decision.cost_upper_bound(),
            up_minutes: up,
            degraded_minutes: degraded,
            max_live,
            kills,
        });

        // ---- bill instances that died this interval ----------------------
        fleet.retain(|inst| {
            if let Some(d) = inst.dies_at {
                death_out_of_bid.inc();
                obs.counter(&format!("replay.terminated.{}", inst.zone)).inc();
                records.push(close_instance(market, inst, d, Termination::Provider));
                false
            } else {
                true
            }
        });

        // ---- retire and bill on-demand fallbacks at the boundary ---------
        // They exist to bridge to the next decision, which replaces them
        // with a fresh spot fleet; billing is the fixed hourly price per
        // started hour.
        for od in on_demand.drain(..) {
            let end = interval_end.max(od.launched_at);
            let cost = spot_market::on_demand_charge(od.hourly, od.launched_at, end);
            repair_on_demand_minutes.add(end - od.launched_at);
            on_demand_cost_total += cost;
            obs.counter(&format!("replay.terminated.{}", od.zone)).inc();
            records.push(InstanceRecord {
                zone: od.zone,
                instance_type: primary_ty,
                bid: od.hourly,
                granted_at: od.launched_at,
                running_from: od.running_from,
                ended_at: end,
                termination: Termination::User,
                on_demand: true,
                cost,
            });
        }

        obs.set_time_micros(minute_micros(interval_end));
        interval_span.end_with(&[
            ("up_minutes", FieldValue::U64(up)),
            ("kills", FieldValue::U64(kills as u64)),
        ]);
        boundary = interval_end;
    }

    // Close out the surviving fleet at the end of the window.
    for inst in fleet.drain(..) {
        death_end_of_replay.inc();
        obs.counter(&format!("replay.terminated.{}", inst.zone)).inc();
        records.push(close_instance(
            market,
            &inst,
            config.eval_end,
            Termination::User,
        ));
    }

    if monitors_on {
        // Fixed-point (parts-per-million) so the bench baseline's exact
        // u64 counter diff covers the SLO verdict.
        obs.counter("slo.availability")
            .add((slo.availability().clamp(0.0, 1.0) * 1e6).round() as u64);
        obs.counter("slo.budget_remaining")
            .add((slo.budget_remaining().max(0.0) * 1e6).round() as u64);
        obs.counter("slo.alerts_fired").add(slo.alerts_fired());
    }

    let total_cost = records.iter().map(|r| r.cost).sum();
    ReplayResult {
        strategy: framework.strategy_name(),
        total_cost,
        window_minutes: config.eval_end - config.eval_start,
        up_minutes: up_minutes_total,
        degraded_minutes: degraded_minutes_total,
        on_demand_cost: on_demand_cost_total,
        instances: records,
        intervals,
        metrics: obs.metrics.is_enabled().then(|| obs.metrics.snapshot()),
        series: obs.series.snapshot(),
        alerts: obs.alerts.snapshot(),
        audit: obs.audit.snapshot(),
    }
}

fn close_instance(
    market: &Market,
    inst: &Active,
    end: u64,
    termination: Termination,
) -> InstanceRecord {
    let end = end.max(inst.granted_at);
    let cost = market.charge(inst.zone, inst.ty, inst.granted_at, end, termination);
    InstanceRecord {
        zone: inst.zone,
        instance_type: inst.ty,
        bid: inst.bid,
        granted_at: inst.granted_at,
        running_from: inst.running_from,
        ended_at: end,
        termination,
        on_demand: false,
        cost,
    }
}

/// The cost of the on-demand baseline over the same window: the baseline
/// node count at the cheapest region's hourly price (§5.5: "5 on-demand
/// instances in the cheapest availability zones").
pub fn on_demand_baseline_cost(market: &Market, spec: &ServiceSpec, config: ReplayConfig) -> Price {
    let ty = spec.instance_type;
    let cheapest = market
        .zones()
        .iter()
        .map(|z| ty.on_demand_price(z.region))
        .min()
        .expect("market has zones");
    let minutes = config.eval_end - config.eval_start;
    spot_market::on_demand_charge(cheapest, 0, minutes) * spec.baseline_nodes as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use jupiter::{ExtraStrategy, JupiterStrategy};
    use spot_market::{InstanceType, MarketConfig};

    use crate::repair::RepairConfig;

    fn small_market(weeks: u64) -> Market {
        let mut cfg = MarketConfig::paper(21, weeks * 7 * 24 * 60);
        cfg.zones.truncate(8);
        cfg.types = vec![InstanceType::M1Small];
        Market::generate(cfg)
    }

    #[test]
    fn extra_strategy_replay_accounts_costs_and_uptime() {
        let market = small_market(2);
        let spec = ServiceSpec::lock_service();
        let config = ReplayConfig::new(7 * 24 * 60, 14 * 24 * 60, 6);
        let r = replay_strategy(&market, &spec, ExtraStrategy::new(0, 0.2), config);
        assert_eq!(r.window_minutes, 7 * 24 * 60);
        assert!(r.total_cost > Price::ZERO);
        assert!(!r.instances.is_empty());
        assert_eq!(r.intervals.len(), 7 * 24 / 6);
        assert!(r.availability() > 0.5, "availability {}", r.availability());
        // Costs are far below on-demand.
        let od = on_demand_baseline_cost(&market, &spec, config);
        assert!(r.total_cost < od, "{} !< {}", r.total_cost, od);
    }

    #[test]
    fn jupiter_replay_runs_and_outperforms_on_availability() {
        // Train 2 weeks, evaluate 2 days at 6-hour intervals (kept small:
        // this is a debug-profile unit test; the full 11-week sweeps run
        // in release via the repro binary and benches).
        let market = small_market(3);
        let spec = ServiceSpec::lock_service();
        let eval_start = 2 * 7 * 24 * 60;
        let config = ReplayConfig::new(eval_start, eval_start + 2 * 24 * 60, 6);
        let jupiter = replay_strategy(&market, &spec, JupiterStrategy::new(), config);
        assert!(
            jupiter.availability() > 0.999,
            "availability {}",
            jupiter.availability()
        );
        let od = on_demand_baseline_cost(&market, &spec, config);
        assert!(jupiter.total_cost < od);
    }

    #[test]
    fn provider_kills_never_bill_partial_hours() {
        let market = small_market(2);
        let spec = ServiceSpec::lock_service();
        let config = ReplayConfig::new(7 * 24 * 60, 14 * 24 * 60, 3);
        let r = replay_strategy(&market, &spec, ExtraStrategy::new(0, 0.05), config);
        for rec in &r.instances {
            if rec.termination == Termination::Provider {
                // The charge equals the full-hours-only bill.
                let full_hours = (rec.ended_at - rec.granted_at) / 60;
                let manual: Price = (0..full_hours)
                    .map(|h| {
                        market
                            .trace(rec.zone, InstanceType::M1Small)
                            .last_price_in(rec.granted_at + h * 60, rec.granted_at + (h + 1) * 60)
                    })
                    .sum();
                assert_eq!(rec.cost, manual);
            }
        }
    }

    #[test]
    fn repair_off_is_byte_identical_to_the_plain_replay() {
        let market = small_market(2);
        let spec = ServiceSpec::lock_service();
        let config = ReplayConfig::new(7 * 24 * 60, 14 * 24 * 60, 3);
        let plain = replay_strategy(&market, &spec, ExtraStrategy::new(0, 0.02), config);
        let store = ModelStore::new();
        let off = replay_repair_stored(
            &market,
            &spec,
            ExtraStrategy::new(0, 0.02),
            config,
            RepairConfig::off(),
            &store,
            &Obs::disabled(),
        );
        assert_eq!(off.total_cost, plain.total_cost);
        assert_eq!(off.up_minutes, plain.up_minutes);
        assert_eq!(off.instances.len(), plain.instances.len());
        assert_eq!(off.on_demand_cost, Price::ZERO);
        assert!(plain.total_kills() > 0, "fixture must produce churn");
        assert!(plain.degraded_minutes > 0, "kills must show up as degradation");
    }

    #[test]
    fn hybrid_repair_strictly_shrinks_degraded_minutes() {
        let market = small_market(2);
        let spec = ServiceSpec::lock_service();
        let config = ReplayConfig::new(7 * 24 * 60, 14 * 24 * 60, 3);
        let store = ModelStore::new();
        let off = replay_repair_stored(
            &market,
            &spec,
            ExtraStrategy::new(0, 0.02),
            config,
            RepairConfig::off(),
            &store,
            &Obs::disabled(),
        );
        let hybrid = replay_repair_stored(
            &market,
            &spec,
            ExtraStrategy::new(0, 0.02),
            config,
            RepairConfig::hybrid(),
            &store,
            &Obs::disabled(),
        );
        assert!(off.total_kills() > 0, "fixture must produce churn");
        assert!(
            hybrid.degraded_minutes < off.degraded_minutes,
            "hybrid {} !< off {}",
            hybrid.degraded_minutes,
            off.degraded_minutes
        );
        // Repair only ever adds live instances: availability is monotone.
        assert!(hybrid.up_minutes >= off.up_minutes);
        // The bill splits cleanly into spot and on-demand shares.
        let od_sum: Price = hybrid
            .instances
            .iter()
            .filter(|r| r.on_demand)
            .map(|r| r.cost)
            .sum();
        assert_eq!(od_sum, hybrid.on_demand_cost);
        assert!(hybrid.total_cost >= hybrid.on_demand_cost);
        // Bounded extra cost: still far below the on-demand baseline.
        let od = on_demand_baseline_cost(&market, &spec, config);
        assert!(hybrid.total_cost < od, "{} !< {}", hybrid.total_cost, od);
        // The fleet never exceeds the decided group size, repair included.
        for iv in &hybrid.intervals {
            assert!(iv.max_live <= iv.group_size, "{iv:?}");
        }
    }

    #[test]
    fn reactive_repair_never_bills_on_demand() {
        let market = small_market(2);
        let spec = ServiceSpec::lock_service();
        let config = ReplayConfig::new(7 * 24 * 60, 14 * 24 * 60, 3);
        let store = ModelStore::new();
        let (obs, _clock) = Obs::simulated();
        let reactive = replay_repair_stored(
            &market,
            &spec,
            ExtraStrategy::new(0, 0.02),
            config,
            RepairConfig::reactive(),
            &store,
            &obs,
        );
        assert_eq!(reactive.on_demand_cost, Price::ZERO);
        assert!(reactive.instances.iter().all(|r| !r.on_demand));
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter("repair.on_demand_launches").unwrap_or(0), 0);
        let detected = snap.counter("repair.deaths_detected").unwrap_or(0);
        let deaths = snap.counter("replay.death.out_of_bid").unwrap_or(0);
        assert_eq!(detected, deaths, "every kill is seen by the controller");
        let filled = snap.counter("repair.spot_replacements").unwrap_or(0);
        assert!(filled <= detected, "replacements can never outnumber kills");
    }

    #[test]
    fn migrate_under_bidding_era_matches_reactive() {
        // Without notices the Migrate policy is pure fallback: it must
        // replay byte-identically to Reactive (strict additivity).
        let market = small_market(2);
        let spec = ServiceSpec::lock_service();
        let config = ReplayConfig::new(7 * 24 * 60, 14 * 24 * 60, 3);
        let store = ModelStore::new();
        let reactive = replay_repair_stored(
            &market,
            &spec,
            ExtraStrategy::new(0, 0.02),
            config,
            RepairConfig::reactive(),
            &store,
            &Obs::disabled(),
        );
        let migrate = replay_repair_stored(
            &market,
            &spec,
            ExtraStrategy::new(0, 0.02),
            config,
            RepairConfig::migrate(),
            &store,
            &Obs::disabled(),
        );
        assert_eq!(migrate.total_cost, reactive.total_cost);
        assert_eq!(migrate.up_minutes, reactive.up_minutes);
        assert_eq!(migrate.degraded_minutes, reactive.degraded_minutes);
        assert_eq!(migrate.instances.len(), reactive.instances.len());
        assert!(reactive.total_kills() > 0, "fixture must produce churn");
    }

    #[test]
    fn capacity_era_migration_drains_and_reconciles_billing() {
        let market = small_market(2);
        let spec = ServiceSpec::lock_service();
        let config = ReplayConfig::new(7 * 24 * 60, 14 * 24 * 60, 3)
            .with_era(BidEra::CapacityReclaim);
        let store = ModelStore::new();
        let (obs, _clock) = Obs::simulated();
        let reactive = replay_repair_stored(
            &market,
            &spec,
            ExtraStrategy::new(0, 0.02),
            config,
            RepairConfig::reactive(),
            &store,
            &Obs::disabled(),
        );
        let migrate = replay_repair_stored(
            &market,
            &spec,
            ExtraStrategy::new(0, 0.02),
            config,
            RepairConfig::migrate(),
            &store,
            &obs,
        );
        assert!(migrate.total_kills() > 0, "capacity era must reclaim");
        let snap = obs.metrics.snapshot();
        assert!(snap.counter("notice.emitted").unwrap_or(0) > 0);
        let drained = snap.counter("migrate.drained").unwrap_or(0);
        assert!(drained >= 1, "at least one pre-deadline drain");
        // Acting on the notice is never worse than reacting to the kill.
        assert!(
            migrate.degraded_minutes <= reactive.degraded_minutes,
            "migrate {} > reactive {}",
            migrate.degraded_minutes,
            reactive.degraded_minutes
        );
        assert!(migrate.up_minutes >= reactive.up_minutes);
        // Billing reconciles record by record: the total is exactly the
        // record sum, nothing billed on-demand, and every reclaimed
        // instance keeps the provider-kill billing (free partial hour) —
        // so the drain window is the only double-billed overlap.
        let record_sum: Price = migrate.instances.iter().map(|r| r.cost).sum();
        assert_eq!(record_sum, migrate.total_cost);
        assert_eq!(migrate.on_demand_cost, Price::ZERO);
        for rec in migrate
            .instances
            .iter()
            .filter(|r| r.termination == Termination::Provider)
        {
            let full_hours = (rec.ended_at - rec.granted_at) / 60;
            let manual: Price = (0..full_hours)
                .map(|h| {
                    market.trace(rec.zone, rec.instance_type).last_price_in(
                        rec.granted_at + h * 60,
                        rec.granted_at + (h + 1) * 60,
                    )
                })
                .sum();
            assert_eq!(rec.cost, manual);
        }
        // Drains are handoffs, not extra capacity: the live count never
        // exceeds the decided group size.
        for iv in &migrate.intervals {
            assert!(iv.max_live <= iv.group_size, "{iv:?}");
        }
        // The controller leaves an audit trail.
        assert!(migrate.audit.iter().any(|r| r.kind.label() == "migration"));
    }

    #[test]
    fn records_partition_the_fleet_time() {
        let market = small_market(2);
        let spec = ServiceSpec::lock_service();
        let config = ReplayConfig::new(7 * 24 * 60, 14 * 24 * 60, 12);
        let r = replay_strategy(&market, &spec, ExtraStrategy::new(2, 0.2), config);
        for rec in &r.instances {
            assert!(rec.granted_at <= rec.running_from);
            assert!(
                rec.running_from <= rec.ended_at + 15,
                "booting instance never ran"
            );
            assert!(rec.ended_at <= config.eval_end);
        }
        // Extra(2,·) holds 7 instances.
        assert!(r.mean_group_size() >= 6.9);
    }
}
