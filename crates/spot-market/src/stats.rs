//! Trace statistics: the quantities the spot-pricing literature reports
//! (Javadi et al.'s statistical modeling; Ben-Yehuda et al.'s
//! deconstruction) and the calibration targets for the synthetic
//! generator.

use serde::{Deserialize, Serialize};

use crate::money::Price;
use crate::trace::PriceTrace;

/// Summary statistics of one price trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceStats {
    /// Time-weighted mean price (dollars).
    pub mean: f64,
    /// Time-weighted standard deviation (dollars).
    pub std_dev: f64,
    /// Minimum price.
    pub min: Price,
    /// Maximum price.
    pub max: Price,
    /// Price quantiles at 10/50/90/99 % (time-weighted).
    pub quantiles: [Price; 4],
    /// Price changes per hour.
    pub changes_per_hour: f64,
    /// Mean sojourn length in minutes (completed segments).
    pub mean_sojourn: f64,
    /// Coefficient of variation of sojourn lengths (> 1 ⇒ heavier than
    /// exponential ⇒ the process is *not* Markov in continuous time,
    /// justifying the paper's semi-Markov model).
    pub sojourn_cv: f64,
    /// Lag-1 autocorrelation of the price level sequence (the Markovian
    /// persistence Ben-Yehuda et al. and Chohan et al. observe).
    pub level_autocorr: f64,
}

impl TraceStats {
    /// Compute the summary for `trace`.
    pub fn of(trace: &PriceTrace) -> TraceStats {
        let horizon = trace.horizon() as f64;
        let mut mean = 0.0;
        let mut m2 = 0.0;
        for s in trace.segments() {
            let w = s.duration as f64 / horizon;
            let p = s.price.as_dollars();
            mean += w * p;
            m2 += w * p * p;
        }
        let std_dev = (m2 - mean * mean).max(0.0).sqrt();

        let mut prices: Vec<(Price, u64)> =
            trace.segments().map(|s| (s.price, s.duration)).collect();
        prices.sort_by_key(|(p, _)| *p);
        let quantile = |q: f64| -> Price {
            let target = (q * trace.horizon() as f64) as u64;
            let mut acc = 0u64;
            for &(p, d) in &prices {
                acc += d;
                if acc > target {
                    return p;
                }
            }
            prices.last().expect("non-empty").0
        };
        let quantiles = [
            quantile(0.10),
            quantile(0.50),
            quantile(0.90),
            quantile(0.99),
        ];

        let min = prices.first().expect("non-empty").0;
        let max = prices.last().expect("non-empty").0;

        // Completed sojourns (exclude the censored final segment).
        let segs: Vec<_> = trace.segments().collect();
        let completed = &segs[..segs.len().saturating_sub(1)];
        let (mean_sojourn, sojourn_cv) = if completed.is_empty() {
            (trace.horizon() as f64, 0.0)
        } else {
            let n = completed.len() as f64;
            let m = completed.iter().map(|s| s.duration as f64).sum::<f64>() / n;
            let v = completed
                .iter()
                .map(|s| (s.duration as f64 - m).powi(2))
                .sum::<f64>()
                / n;
            (m, v.sqrt() / m.max(f64::EPSILON))
        };

        // Lag-1 autocorrelation of the segment-price sequence.
        let levels: Vec<f64> = segs.iter().map(|s| s.price.as_dollars()).collect();
        let level_autocorr = lag1_autocorr(&levels);

        TraceStats {
            mean,
            std_dev,
            min,
            max,
            quantiles,
            changes_per_hour: trace.changes_per_hour(),
            mean_sojourn,
            sojourn_cv,
            level_autocorr,
        }
    }
}

/// Lag-1 sample autocorrelation (0 for constant or too-short series).
pub fn lag1_autocorr(xs: &[f64]) -> f64 {
    if xs.len() < 3 {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    if var < f64::EPSILON {
        return 0.0;
    }
    let cov = xs
        .windows(2)
        .map(|w| (w[0] - mean) * (w[1] - mean))
        .sum::<f64>()
        / (n - 1.0);
    (cov / var).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGenerator;
    use crate::instance::InstanceType;
    use crate::topology::all_zones;
    use crate::trace::PricePoint;

    fn p(d: f64) -> Price {
        Price::from_dollars(d)
    }

    #[test]
    fn deterministic_two_level_stats() {
        // 0.01 for 60 min, 0.03 for 40 min.
        let t = PriceTrace::new(
            vec![
                PricePoint {
                    minute: 0,
                    price: p(0.01),
                },
                PricePoint {
                    minute: 60,
                    price: p(0.03),
                },
            ],
            100,
        );
        let s = TraceStats::of(&t);
        assert!((s.mean - 0.018).abs() < 1e-12);
        assert_eq!(s.min, p(0.01));
        assert_eq!(s.max, p(0.03));
        assert_eq!(s.quantiles[1], p(0.01)); // median minute is cheap
        assert_eq!(s.quantiles[3], p(0.03));
        let expected_std =
            (0.6f64 * 0.01f64.powi(2) + 0.4 * 0.03f64.powi(2) - 0.018f64.powi(2)).sqrt();
        assert!((s.std_dev - expected_std).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_detects_persistence() {
        let rising: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert!(lag1_autocorr(&rising) > 0.9);
        let alternating: Vec<f64> = (0..50).map(|i| (i % 2) as f64).collect();
        assert!(lag1_autocorr(&alternating) < -0.9);
        assert_eq!(lag1_autocorr(&[1.0, 1.0, 1.0, 1.0]), 0.0);
        assert_eq!(lag1_autocorr(&[1.0, 2.0]), 0.0);
    }

    #[test]
    fn generator_matches_paper_reported_shape() {
        // The calibration contract of the synthetic market: level
        // persistence (positive autocorrelation), non-memoryless sojourns
        // (CV > 1 in aggregate), minute-scale changes.
        let gen = TraceGenerator::new(99);
        let mut cvs = Vec::new();
        for z in all_zones().into_iter().take(8) {
            let t = gen.generate(z, InstanceType::M1Small, 6 * 7 * 24 * 60);
            let s = TraceStats::of(&t);
            assert!(
                s.changes_per_hour > 0.5,
                "{}: {}",
                z.name(),
                s.changes_per_hour
            );
            assert!(s.mean > 0.0 && s.std_dev > 0.0);
            assert!(s.quantiles[0] <= s.quantiles[1]);
            assert!(s.quantiles[1] <= s.quantiles[2]);
            assert!(s.quantiles[2] <= s.quantiles[3]);
            cvs.push(s.sojourn_cv);
        }
        let mean_cv = cvs.iter().sum::<f64>() / cvs.len() as f64;
        assert!(mean_cv > 1.0, "sojourns look memoryless: CV {mean_cv}");
    }
}
