//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, dependency-free implementation of the APIs it
//! actually calls: the [`RngCore`]/[`Rng`]/[`SeedableRng`] traits,
//! `gen`, `gen_range` and `gen_bool`. Semantics match rand 0.8 (uniform
//! ranges, 53-bit float precision); bit-exact stream compatibility with
//! upstream is **not** guaranteed, only determinism for a given seed.

// Vendored API-compat shim: exempt from workspace lint policy.
#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// The low-level generator interface: a source of uniform random bits.
pub trait RngCore {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable uniformly from the generator's "standard" distribution
/// (`rng.gen::<T>()`): full range for integers, `[0, 1)` for floats.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), as upstream.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types [`Rng::gen_range`] can produce. Like upstream, the range
/// argument traits below have exactly one blanket impl per range shape
/// over this trait — that uniqueness is what lets inference unify the
/// range's element type with the produced type at call sites like
/// `x * rng.gen_range(0.7..1.4)`.
pub trait SampleUniform: PartialOrd + Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128) - (lo as i128) + 1;
                    if span > u64::MAX as i128 {
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    (lo as i128 + uniform_u64_below(rng, span as u64) as i128) as $t
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let span = ((hi as i128) - (lo as i128)) as u64;
                    (lo as i128 + uniform_u64_below(rng, span) as i128) as $t
                }
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi, true)
    }
}

/// Uniform value in `[0, span)` (`span = 0` means the full 64-bit range),
/// via the widening-multiply method.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Widening multiply maps 64 uniform bits onto [0, span) with
    // negligible bias for the span sizes used in this workspace.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A biased coin flip: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array for the workspace's RNGs).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded to a full seed with SplitMix64
    /// (the same construction upstream uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Commonly used re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(5u64..17);
            assert!((5..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&i));
        }
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = Lcg(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        struct S([u8; 32]);
        impl SeedableRng for S {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> S {
                S(seed)
            }
        }
        assert_eq!(S::seed_from_u64(9).0, S::seed_from_u64(9).0);
        assert_ne!(S::seed_from_u64(9).0, S::seed_from_u64(10).0);
    }
}
