//! Instance types and their on-demand prices.
//!
//! The paper builds the lock service on `m1.small` ($0.044–0.061/h
//! on-demand depending on region) and the storage service on `m3.large`
//! ($0.14–0.201/h). Two further 2014-era types are included for API
//! completeness. On-demand prices are per-region constants; spot prices
//! come from [`crate::trace`].

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::money::Price;
use crate::topology::Region;

/// An EC2 instance type from the 2014 catalogue.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum InstanceType {
    /// `m1.small` — 1 vCPU, 1.7 GiB; the lock-service instance type.
    M1Small,
    /// `m1.medium` — 1 vCPU, 3.75 GiB.
    M1Medium,
    /// `c3.large` — 2 vCPU, 3.75 GiB, compute-optimized.
    C3Large,
    /// `m3.large` — 2 vCPU, 7.5 GiB; the storage-service instance type.
    M3Large,
}

impl InstanceType {
    /// All supported types.
    pub const ALL: [InstanceType; 4] = [
        InstanceType::M1Small,
        InstanceType::M1Medium,
        InstanceType::C3Large,
        InstanceType::M3Large,
    ];

    /// The API name, e.g. `m1.small`.
    pub fn api_name(self) -> &'static str {
        match self {
            InstanceType::M1Small => "m1.small",
            InstanceType::M1Medium => "m1.medium",
            InstanceType::C3Large => "c3.large",
            InstanceType::M3Large => "m3.large",
        }
    }

    /// Hourly on-demand price in `region`.
    ///
    /// Values reproduce the ranges the paper quotes: `m1.small` spans
    /// $0.044 (US East) to $0.061 (São Paulo); `m3.large` spans $0.140 to
    /// $0.201.
    pub fn on_demand_price(self, region: Region) -> Price {
        let dollars = match self {
            InstanceType::M1Small => match region {
                Region::UsEast1 | Region::UsWest2 => 0.044,
                Region::UsWest1 | Region::EuWest1 => 0.047,
                Region::EuCentral1 => 0.050,
                Region::ApSoutheast1 | Region::ApSoutheast2 => 0.058,
                Region::ApNortheast1 | Region::SaEast1 => 0.061,
            },
            InstanceType::M1Medium => match region {
                Region::UsEast1 | Region::UsWest2 => 0.087,
                Region::UsWest1 | Region::EuWest1 => 0.095,
                Region::EuCentral1 => 0.101,
                Region::ApSoutheast1 | Region::ApSoutheast2 => 0.117,
                Region::ApNortheast1 | Region::SaEast1 => 0.122,
            },
            InstanceType::C3Large => match region {
                Region::UsEast1 | Region::UsWest2 => 0.105,
                Region::UsWest1 | Region::EuWest1 => 0.120,
                Region::EuCentral1 => 0.129,
                Region::ApSoutheast1 | Region::ApSoutheast2 => 0.132,
                Region::ApNortheast1 => 0.128,
                Region::SaEast1 => 0.163,
            },
            InstanceType::M3Large => match region {
                Region::UsEast1 | Region::UsWest2 => 0.140,
                Region::UsWest1 | Region::EuWest1 => 0.154,
                Region::EuCentral1 => 0.158,
                Region::ApSoutheast1 => 0.196,
                Region::ApSoutheast2 => 0.186,
                Region::ApNortheast1 => 0.183,
                Region::SaEast1 => 0.201,
            },
        };
        Price::from_dollars(dollars)
    }

    /// The default bid cap: spot bids may not exceed four times the
    /// on-demand price (the 2014 EC2 limit the paper cites). The bidding
    /// framework itself additionally caps bids at 1× on-demand (§4.2).
    pub fn max_bid(self, region: Region) -> Price {
        self.on_demand_price(region) * 4
    }

    /// Serving strength relative to one `m1.small` (ECU-style capacity
    /// units, rounded to integers so strength arithmetic stays exact): an
    /// `m3.large` counts as four `m1.small`s of request-serving capacity.
    /// Heterogeneous fleet planning allocates against Σ weights rather
    /// than node counts.
    pub fn capacity_weight(self) -> u32 {
        match self {
            InstanceType::M1Small => 1,
            InstanceType::M1Medium => 2,
            InstanceType::C3Large => 3,
            InstanceType::M3Large => 4,
        }
    }

    /// Index of this type in [`InstanceType::ALL`] — the deterministic
    /// tie-break ordinal used wherever pools are sorted.
    pub fn ordinal(self) -> usize {
        match self {
            InstanceType::M1Small => 0,
            InstanceType::M1Medium => 1,
            InstanceType::C3Large => 2,
            InstanceType::M3Large => 3,
        }
    }
}

impl fmt::Display for InstanceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.api_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m1_small_price_range_matches_paper() {
        let prices: Vec<f64> = Region::ALL
            .iter()
            .map(|&r| InstanceType::M1Small.on_demand_price(r).as_dollars())
            .collect();
        let lo = prices.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = prices.iter().cloned().fold(0.0, f64::max);
        assert!((lo - 0.044).abs() < 1e-9, "lo={lo}");
        assert!((hi - 0.061).abs() < 1e-9, "hi={hi}");
    }

    #[test]
    fn m3_large_price_range_matches_paper() {
        let prices: Vec<f64> = Region::ALL
            .iter()
            .map(|&r| InstanceType::M3Large.on_demand_price(r).as_dollars())
            .collect();
        let lo = prices.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = prices.iter().cloned().fold(0.0, f64::max);
        assert!((lo - 0.140).abs() < 1e-9, "lo={lo}");
        assert!((hi - 0.201).abs() < 1e-9, "hi={hi}");
    }

    #[test]
    fn max_bid_is_four_times_on_demand() {
        for ty in InstanceType::ALL {
            for r in Region::ALL {
                assert_eq!(ty.max_bid(r), ty.on_demand_price(r) * 4);
            }
        }
    }

    #[test]
    fn capacity_weights_are_monotone_in_price() {
        // Strength per dollar is what the heterogeneous optimizer trades
        // on; the weights must at least rank with size.
        assert_eq!(InstanceType::M1Small.capacity_weight(), 1);
        assert_eq!(InstanceType::M3Large.capacity_weight(), 4);
        for w in InstanceType::ALL.windows(2) {
            assert!(w[0].capacity_weight() < w[1].capacity_weight());
        }
        for (i, ty) in InstanceType::ALL.iter().enumerate() {
            assert_eq!(ty.ordinal(), i);
        }
    }

    #[test]
    fn bigger_types_cost_more() {
        for r in Region::ALL {
            let small = InstanceType::M1Small.on_demand_price(r);
            let medium = InstanceType::M1Medium.on_demand_price(r);
            let large = InstanceType::M3Large.on_demand_price(r);
            assert!(small < medium && medium < large, "{r}");
        }
    }
}
