//! Market-derived fault schedules: out-of-bid terminations as chaos.
//!
//! The market-level replay ([`crate::lifecycle`]) records every instance's
//! life as an [`InstanceRecord`]. This module converts those records into
//! a [`ChaosSchedule`] for a protocol cluster, so the *timing pattern* of
//! real out-of-bid churn — correlated kills at price spikes, replacements
//! booting minutes later — drives the Paxos/RS-Paxos safety checkers
//! instead of (or alongside) purely random schedules.
//!
//! Time mapping matches [`crate::service_level`]: one market minute is one
//! simulated second, so sub-second protocol dynamics (elections, lease
//! renewal) play out between consecutive market events.

use simnet::{ChaosAction, ChaosEvent, ChaosSchedule, NodeId, SimTime};
use spot_market::{Termination, Zone};

use crate::results::ReplayResult;

/// One market minute of the evaluation window as simulated time.
fn to_sim(minute_rel: u64) -> SimTime {
    SimTime::from_secs(minute_rel)
}

/// Derive a crash/restart schedule for a `slots`-replica protocol cluster
/// from a market replay's instance records.
///
/// Zones are assigned to replica slots in order of first appearance
/// (wrapping when the replay used more zones than there are slots). An
/// out-of-bid death ([`Termination::Provider`]) inside the window becomes
/// a [`ChaosAction::Crash`] of that zone's slot; a later instance booting
/// in the zone becomes the matching [`ChaosAction::Restart`]. Slots still
/// down at the end of the window are restarted at the window boundary, so
/// post-schedule progress can always be asserted. Graceful boundary
/// retirements ([`Termination::User`]) are not faults and are ignored.
///
/// The result carries `seed = 0`: it is derived data, reproducible from
/// the replay's own inputs rather than from a chaos seed.
pub fn market_fault_schedule(result: &ReplayResult, eval_start: u64, slots: usize) -> ChaosSchedule {
    assert!(slots >= 1, "need at least one replica slot");
    let mut zone_slots: Vec<Zone> = Vec::new();
    let slot_for = |zone: Zone, zone_slots: &mut Vec<Zone>| -> usize {
        match zone_slots.iter().position(|&z| z == zone) {
            Some(i) => i % slots,
            None => {
                zone_slots.push(zone);
                (zone_slots.len() - 1) % slots
            }
        }
    };

    // Raw (minute, is_crash, slot) stream. Restarts sort before crashes at
    // the same minute so a kill-and-replace minute nets out to "down".
    let mut raw: Vec<(u64, bool, usize)> = Vec::new();
    for rec in &result.instances {
        let slot = slot_for(rec.zone, &mut zone_slots);
        if rec.termination == Termination::Provider && rec.ended_at >= eval_start {
            raw.push((rec.ended_at, true, slot));
        }
        if rec.running_from > eval_start {
            raw.push((rec.running_from, false, slot));
        }
    }
    raw.sort_by_key(|&(minute, is_crash, slot)| (minute, is_crash, slot));

    let mut down = vec![false; slots];
    let mut events = Vec::new();
    for (minute, is_crash, slot) in raw {
        let at = to_sim(minute.saturating_sub(eval_start));
        if is_crash && !down[slot] {
            down[slot] = true;
            events.push(ChaosEvent {
                at,
                action: ChaosAction::Crash(NodeId(slot)),
            });
        } else if !is_crash && down[slot] {
            down[slot] = false;
            events.push(ChaosEvent {
                at,
                action: ChaosAction::Restart(NodeId(slot)),
            });
        }
    }

    let end = to_sim(result.window_minutes);
    for (slot, is_down) in down.iter().enumerate() {
        if *is_down {
            events.push(ChaosEvent {
                at: end,
                action: ChaosAction::Restart(NodeId(slot)),
            });
        }
    }

    ChaosSchedule { seed: 0, events }
}

/// The longest idle stretch [`capacity_fault_schedule`] keeps between
/// consecutive fault events, in simulated seconds. Capacity reclamations
/// are sparse (a handful per pool-week), so the raw minute-per-second
/// mapping would leave the protocol cluster idling for simulated hours
/// between correlated bursts.
pub const CAPACITY_MAX_IDLE_SECS: u64 = 120;

/// [`market_fault_schedule`] for capacity-era replays: the same
/// crash/restart derivation — under [`spot_market::BidEra::CapacityReclaim`]
/// every [`Termination::Provider`] record is a capacity reclamation, and a
/// migration replacement's boot becomes the Restart that *precedes* its
/// correlated Crash whenever the drain beat the deadline — but with idle
/// gaps between events compressed to at most [`CAPACITY_MAX_IDLE_SECS`]
/// simulated seconds. Relative order is preserved exactly, and same-minute
/// correlated crashes (whole-zone capacity crunches) stay simultaneous, so
/// the safety checkers see the full notice → drain → view change → kill
/// sequence without hours of dead air.
pub fn capacity_fault_schedule(
    result: &ReplayResult,
    eval_start: u64,
    slots: usize,
) -> ChaosSchedule {
    let base = market_fault_schedule(result, eval_start, slots);
    let mut sim_ms = 0u64;
    let mut prev_raw_ms = 0u64;
    let events = base
        .events
        .into_iter()
        .map(|ev| {
            let raw_ms = ev.at.as_millis();
            let gap = raw_ms
                .saturating_sub(prev_raw_ms)
                .min(CAPACITY_MAX_IDLE_SECS * 1_000);
            prev_raw_ms = raw_ms;
            sim_ms += gap;
            ChaosEvent {
                at: SimTime::from_millis(sim_ms),
                action: ev.action,
            }
        })
        .collect();
    ChaosSchedule { seed: 0, events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::{replay_strategy, ReplayConfig};
    use jupiter::{ExtraStrategy, ServiceSpec};
    use spot_market::{InstanceType, Market, MarketConfig};

    fn replay() -> (ReplayResult, u64) {
        let mut cfg = MarketConfig::paper(21, 2 * 7 * 24 * 60);
        cfg.zones.truncate(8);
        cfg.types = vec![InstanceType::M1Small];
        let market = Market::generate(cfg);
        let spec = ServiceSpec::lock_service();
        let eval_start = 7 * 24 * 60;
        let config = ReplayConfig::new(eval_start, 14 * 24 * 60, 3);
        // A deliberately low bid premium so out-of-bid kills actually occur.
        (
            replay_strategy(&market, &spec, ExtraStrategy::new(0, 0.02), config),
            eval_start,
        )
    }

    #[test]
    fn schedule_alternates_and_ends_all_up() {
        let (result, eval_start) = replay();
        let schedule = market_fault_schedule(&result, eval_start, 5);
        let mut down = [false; 5];
        let mut last = SimTime::ZERO;
        for ev in &schedule.events {
            assert!(ev.at >= last, "events out of order");
            last = ev.at;
            match ev.action {
                ChaosAction::Crash(n) => {
                    assert!(!down[n.0], "crash of a down slot");
                    down[n.0] = true;
                }
                ChaosAction::Restart(n) => {
                    assert!(down[n.0], "restart of an up slot");
                    down[n.0] = false;
                }
                ref other => panic!("unexpected action {other:?}"),
            }
        }
        assert!(down.iter().all(|d| !d), "slots left down at window end");
        assert!(
            schedule.events.iter().all(|e| e.at <= to_sim(result.window_minutes)),
            "event beyond the window"
        );
    }

    #[test]
    fn out_of_bid_kills_appear_as_crashes() {
        let (result, eval_start) = replay();
        let kills = result
            .instances
            .iter()
            .filter(|r| r.termination == Termination::Provider && r.ended_at >= eval_start)
            .count();
        assert!(kills > 0, "fixture must produce out-of-bid churn");
        let schedule = market_fault_schedule(&result, eval_start, 5);
        let crashes = schedule
            .events
            .iter()
            .filter(|e| matches!(e.action, ChaosAction::Crash(_)))
            .count();
        // Same-slot collisions can merge kills, never invent them.
        assert!(crashes >= 1 && crashes <= kills, "crashes={crashes} kills={kills}");
    }

    #[test]
    fn derivation_is_deterministic() {
        let (result, eval_start) = replay();
        let a = market_fault_schedule(&result, eval_start, 5);
        let b = market_fault_schedule(&result, eval_start, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn capacity_schedule_compresses_gaps_and_preserves_order() {
        use crate::repair::RepairConfig;
        use spot_market::BidEra;
        let mut cfg = MarketConfig::paper(21, 2 * 7 * 24 * 60);
        cfg.zones.truncate(8);
        cfg.types = vec![InstanceType::M1Small];
        let market = Market::generate(cfg);
        let spec = ServiceSpec::lock_service();
        let eval_start = 7 * 24 * 60;
        let config = ReplayConfig::new(eval_start, 14 * 24 * 60, 3)
            .with_era(BidEra::CapacityReclaim);
        let store = jupiter::ModelStore::new();
        let result = crate::lifecycle::replay_repair_stored(
            &market,
            &spec,
            ExtraStrategy::new(0, 0.2),
            config,
            RepairConfig::migrate(),
            &store,
            &obs::Obs::disabled(),
        );
        let raw = market_fault_schedule(&result, eval_start, 5);
        let compressed = capacity_fault_schedule(&result, eval_start, 5);
        // Same action sequence, only the clock is compressed.
        assert_eq!(raw.events.len(), compressed.events.len());
        assert!(!compressed.events.is_empty(), "capacity churn must appear");
        let mut prev = SimTime::ZERO;
        for (r, c) in raw.events.iter().zip(&compressed.events) {
            assert_eq!(r.action, c.action);
            assert!(c.at >= prev, "compressed events out of order");
            assert!(
                c.at.saturating_sub(prev).as_secs() <= CAPACITY_MAX_IDLE_SECS,
                "gap beyond the idle cap"
            );
            assert!(c.at <= r.at, "compression never delays an event");
            prev = c.at;
        }
        // Same-minute correlated events stay simultaneous.
        for (rs, cs) in raw.events.windows(2).zip(compressed.events.windows(2)) {
            if rs[0].at == rs[1].at {
                assert_eq!(cs[0].at, cs[1].at);
            }
        }
    }
}
