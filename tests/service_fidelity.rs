//! Integration tests crossing the market/protocol boundary: the live
//! Paxos lock service and RS-Paxos store driven by market-derived fault
//! schedules.

use bytes::Bytes;
use spot_jupiter::jupiter::{ExtraStrategy, JupiterStrategy, ServiceSpec};
use spot_jupiter::paxos::{ClientOp, LockCmd, LockService, ReplicaConfig};
use spot_jupiter::replay::service_level::{lock_service_replay, ServiceReplayConfig};
use spot_jupiter::replay::{RepairConfig, RepairPolicy, Scenario, SweepSpec};
use spot_jupiter::simnet::SimTime;
use spot_jupiter::spot_market::{InstanceType, Market, MarketConfig};
use spot_jupiter::storage::{RsConfig, StoreCmd, StoreResp};
use test_util::{lock_cluster, storage_cluster};

#[test]
fn service_level_replay_meets_sla() {
    let train = 2 * 7 * 24 * 60;
    let mut cfg = MarketConfig::paper(55, train + 3 * 60 + 30);
    cfg.zones.truncate(8);
    cfg.types = vec![InstanceType::M1Small];
    let market = Market::generate(cfg);
    let out = lock_service_replay(
        &market,
        JupiterStrategy::new(),
        ServiceReplayConfig {
            eval_start: train,
            window_minutes: 3 * 60,
            interval_hours: 1,
            sla_ms: 5_000,
            seed: 4,
        },
    );
    assert!(out.ops_completed > 30, "completed {}", out.ops_completed);
    assert_eq!(out.ops_unfinished, 0);
    assert!(out.sla_fraction > 0.9, "sla {}", out.sla_fraction);
    assert!(out.agreed_log_len >= out.ops_completed);
}

#[test]
fn repair_never_lowers_availability_across_the_interval_sweep() {
    // The paper-shaped lock-service scenario (13-week-style structure at
    // smoke scale: train prefix, held-out evaluation span, interval
    // sweep) replayed twice per cell — repair off and hybrid — through
    // one shared kernel store. Boundary decisions are frozen at the
    // boundary models, so for every swept interval and both strategies
    // the repairing cell must match or beat the plain cell's
    // availability; a single regression here means the controller
    // interfered with the fixed-interval baseline it is supposed to
    // strictly extend.
    let train = 2 * 7 * 24 * 60;
    let eval = 7 * 24 * 60;
    let mut cfg = MarketConfig::paper(2014, train + eval);
    cfg.zones.truncate(10);
    cfg.types = vec![InstanceType::M1Small];
    let market = Market::generate(cfg);

    let scenario = Scenario::new(market, train, train + eval);
    let spec = SweepSpec::new(ServiceSpec::lock_service())
        .strategy(|_| Box::new(JupiterStrategy::new()))
        .strategy(|_| Box::new(ExtraStrategy::new(0, 0.05)))
        .intervals(vec![1, 3, 6, 12])
        .repairs(vec![RepairConfig::off(), RepairConfig::hybrid()]);
    let cells = scenario.run(&spec);
    assert_eq!(cells.len(), 16);

    // Grid order keeps each (interval, strategy) pair adjacent with off
    // before hybrid.
    let mut compared = 0;
    for pair in cells.chunks(2) {
        let [off, hybrid] = pair else { unreachable!() };
        assert_eq!(off.repair, RepairPolicy::Off);
        assert_eq!(hybrid.repair, RepairPolicy::Hybrid);
        assert_eq!(off.interval_hours, hybrid.interval_hours);
        assert_eq!(off.result.strategy, hybrid.result.strategy);
        assert!(
            hybrid.result.availability() >= off.result.availability() - 1e-12,
            "{} at {}h: repair lowered availability {} -> {}",
            off.result.strategy,
            off.interval_hours,
            off.result.availability(),
            hybrid.result.availability()
        );
        assert!(
            hybrid.result.degraded_minutes <= off.result.degraded_minutes,
            "{} at {}h: repair raised degraded minutes",
            off.result.strategy,
            off.interval_hours
        );
        // And repair stays cheaper than surrendering to on-demand.
        assert!(hybrid.result.total_cost < scenario.baseline_cost(spec.service()));
        compared += 1;
    }
    assert_eq!(compared, 8);

    // The thin-margin heuristic must actually have exercised repair
    // somewhere in the sweep, or the assertions above were vacuous.
    let exercised = cells.iter().any(|c| {
        c.repair == RepairPolicy::Hybrid
            && c.result.degraded_minutes
                < cells
                    .iter()
                    .find(|o| {
                        o.repair == RepairPolicy::Off
                            && o.interval_hours == c.interval_hours
                            && o.result.strategy == c.result.strategy
                    })
                    .expect("paired off cell")
                    .result
                    .degraded_minutes
    });
    assert!(exercised, "no cell saw a repairable mid-interval kill");
}

#[test]
fn lock_service_rolling_replacement_is_seamless() {
    // Replace every replica of a 5-node group one by one (the worst-case
    // outcome of five consecutive bidding intervals) while a client works.
    let mut c = lock_cluster(5, ReplicaConfig::default(), 8);
    let client = c.add_client();
    c.submit(
        client,
        ClientOp::App(LockCmd::Acquire {
            name: "root".into(),
            owner: client,
        }),
    );
    assert!(c.run_until_drained(client, SimTime::from_secs(30)));

    for round in 0..5 {
        let outgoing = c
            .current_view()
            .expect("view")
            .into_iter()
            .min()
            .expect("non-empty view");
        let newcomer = c.spawn_server(LockService::new());
        c.submit(
            client,
            ClientOp::Reconfig {
                add: vec![newcomer],
                remove: vec![outgoing],
            },
        );
        assert!(
            c.run_until_drained(client, c.sim.now() + SimTime::from_secs(120)),
            "round {round} reconfig"
        );
        c.refresh_clients();
        c.crash(outgoing);
        // The service keeps answering after each swap.
        c.submit(
            client,
            ClientOp::App(LockCmd::Acquire {
                name: format!("l{round}"),
                owner: client,
            }),
        );
        assert!(
            c.run_until_drained(client, c.sim.now() + SimTime::from_secs(120)),
            "round {round} op"
        );
    }
    // Nothing of the original membership remains.
    let view = c.current_view().expect("view");
    assert_eq!(view.len(), 5);
    assert!(view.iter().all(|n| n.0 >= 5), "fully rotated: {view:?}");
    c.assert_log_agreement();
}

#[test]
fn storage_service_handles_churn_with_quorum_margin() {
    // Kill and restart replicas one at a time (never two concurrently —
    // θ(3,5) tolerates exactly one) across several rounds of writes.
    let mut c = storage_cluster(5, RsConfig::default(), 17);
    let client = c.add_client();
    for round in 0..4u8 {
        let obj = Bytes::from(vec![round; 400]);
        c.submit(
            client,
            StoreCmd::Put {
                key: format!("k{round}"),
                object: obj,
            },
        );
        assert!(
            c.run_until_drained(client, c.sim.now() + SimTime::from_secs(120)),
            "round {round} put"
        );
        let victim = c.servers()[round as usize % 5];
        c.crash(victim);
        c.submit(
            client,
            StoreCmd::Get {
                key: format!("k{round}"),
            },
        );
        assert!(
            c.run_until_drained(client, c.sim.now() + SimTime::from_secs(180)),
            "round {round} get under failure"
        );
        match c.last_response(client) {
            Some(StoreResp::Value { object: Some(got) }) => {
                assert_eq!(got, Bytes::from(vec![round; 400]), "round {round}");
            }
            other => panic!("round {round}: {other:?}"),
        }
        c.restart(victim);
        c.sim.run_until(c.sim.now() + SimTime::from_secs(20));
    }
}
