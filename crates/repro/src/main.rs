//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--quick] [--seed N] [--metrics-out PATH] [--report-out PATH] \
//!       [all|fig1|table1|fig4|fig5|fig6|fig7|fig8|fig9|headline|repair|ablations|calibration|metrics|report|workload|hetero|era]
//! ```
//!
//! By default runs at the paper's scale (13 training weeks, 11 evaluation
//! weeks, 17 availability zones, interval sweep {1,3,6,9,12} h), which
//! takes a few minutes in release mode; `--quick` shrinks everything for a
//! smoke run.
//!
//! `--metrics-out PATH` runs an instrumented pass — a Jupiter market
//! replay plus a short service-level Paxos replay, both recording into a
//! shared [`obs::Obs`] — and dumps the metrics registry and trace ring as
//! JSON to `PATH`. With no explicit target it runs only that pass
//! (`metrics` target).
//!
//! The `workload` target is the request-level extension: seeded
//! open-loop replays (Poisson arrivals over hundreds of window-1
//! sessions) against the Paxos lock service and the RS-Paxos store,
//! reporting scheduled-arrival→completion latency quantiles and an
//! SLO-based availability, plus a batched-vs-unbatched comparison at a
//! reference load that saturates the unbatched accept pipeline. Its
//! stdout is deterministic for a given seed, so CI diffs it across
//! thread counts.
//!
//! The `report` target runs a recorded Jupiter replay and renders the
//! time series (spot price vs. bid, per-interval cost and availability,
//! fleet size) into a self-contained HTML file — inline SVG, no external
//! assets — at `--report-out PATH` (default `report.html`).

use std::env;
use std::time::Instant;

use replay::experiments::{self, Scale, SweepRow};

mod report;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(2014);
    let metrics_out = args
        .iter()
        .position(|a| a == "--metrics-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let report_out = args
        .iter()
        .position(|a| a == "--report-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    // Flag values must not be mistaken for the target word.
    let value_positions: Vec<Option<usize>> =
        vec![seed_pos(&args), metrics_out_pos(&args), report_out_pos(&args)];
    let what = args
        .iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && !value_positions.contains(&Some(*i)))
        .map(|(_, a)| a.clone())
        .unwrap_or_else(|| {
            if metrics_out.is_some() {
                "metrics".into()
            } else {
                "all".into()
            }
        });

    let scale = if quick {
        Scale::quick(seed)
    } else {
        Scale::paper(seed)
    };
    eprintln!(
        "# scale: train {}w, eval {}w, {} zones, intervals {:?}, seed {}",
        scale.train_weeks, scale.eval_weeks, scale.zones, scale.intervals, seed
    );

    let t0 = Instant::now();
    match what.as_str() {
        "all" => {
            table1();
            fig1(seed);
            fig4(&scale);
            fig5(&scale);
            let lock =
                sweep_and_print("Figure 6/7 — lock service", experiments::lock_sweep(&scale));
            let storage = sweep_and_print(
                "Figure 8/9 — storage service",
                experiments::storage_sweep(&scale),
            );
            headline(&lock, &storage);
            repair(&scale);
            ablations(&scale);
        }
        "table1" => table1(),
        "fig1" => fig1(seed),
        "fig4" => fig4(&scale),
        "fig5" => fig5(&scale),
        "fig6" | "fig7" => {
            sweep_and_print("Figure 6/7 — lock service", experiments::lock_sweep(&scale));
        }
        "fig8" | "fig9" => {
            sweep_and_print(
                "Figure 8/9 — storage service",
                experiments::storage_sweep(&scale),
            );
        }
        "headline" => {
            let lock = experiments::lock_sweep(&scale);
            let storage = experiments::storage_sweep(&scale);
            headline(&lock, &storage);
        }
        "repair" => repair(&scale),
        "hetero" => hetero(&scale),
        "era" => era(&scale),
        "ablations" => ablations(&scale),
        "ablation-g" => {
            println!("\n== Ablation G: one-shot fixed bids (Andrzejak-style) vs online re-bidding ==");
            println!(
                "{:<26} {:>12} {:>12} {:>7}",
                "strategy", "cost ($)", "availability", "kills"
            );
            for r in experiments::ablation_fixed_once(&scale) {
                println!(
                    "{:<26} {:>12.2} {:>12.6} {:>7}",
                    r.strategy,
                    r.cost.as_dollars(),
                    r.availability,
                    r.kills
                );
            }
        }
        "calibration" => calibration(&scale),
        "workload" => workload_target(quick, seed),
        "metrics" => {} // instrumented pass runs below
        "report" => {
            let path = report_out.clone().unwrap_or_else(|| "report.html".into());
            report_pass(seed, &path);
        }
        other => {
            eprintln!("unknown target '{other}'");
            std::process::exit(2);
        }
    }
    if what == "metrics" || metrics_out.is_some() {
        let path = metrics_out.unwrap_or_else(|| "metrics.json".into());
        metrics_pass(seed, &path);
    }
    eprintln!("# done in {:.1?}", t0.elapsed());
}

fn seed_pos(args: &[String]) -> Option<usize> {
    args.iter().position(|a| a == "--seed").map(|i| i + 1)
}

fn metrics_out_pos(args: &[String]) -> Option<usize> {
    args.iter().position(|a| a == "--metrics-out").map(|i| i + 1)
}

fn report_out_pos(args: &[String]) -> Option<usize> {
    args.iter().position(|a| a == "--report-out").map(|i| i + 1)
}

/// The `report` target: a recorded Jupiter market replay (series enabled,
/// mid-interval repair on so the repair series exist) plus a short traced
/// service-level Paxos replay, rendered into a self-contained HTML file
/// with inline SVG charts, alert-annotated cost/availability charts, the
/// decision audit timeline, per-operation trace Gantts, and a
/// critical-path attribution table. The trace ring is exported as
/// Chrome-trace JSON next to the report; the audit log and fired alerts
/// as versioned JSONL.
fn report_pass(seed: u64, path: &str) {
    use jupiter::{JupiterStrategy, ModelStore, ServiceSpec};
    use obs::{alerts_jsonl, audit_jsonl, chrome_trace_json, Obs};
    use replay::service_level::{lock_service_replay_observed, ServiceReplayConfig};
    use replay::{replay_repair_stored, RepairConfig, ReplayConfig};
    use spot_market::{InstanceType, Market, MarketConfig};

    println!("\n== Report pass: recorded Jupiter replay → {path} ==");
    let (obs, _clock) = Obs::simulated();

    let train = 2 * 7 * 24 * 60;
    let eval = 7 * 24 * 60;
    let mut cfg = MarketConfig::paper(seed, train + eval);
    cfg.zones.truncate(8);
    cfg.types = vec![InstanceType::M1Small];
    let market = Market::generate(cfg);
    let spec = ServiceSpec::lock_service();

    // A short service-level replay on the same market fills the trace
    // ring with per-operation causal spans for the Gantt section. It
    // must run *before* the market replay: the shared ManualClock is
    // monotone, and the market replay stamps market-minute time (~1e12
    // µs), which would clamp the service replay's sim-millisecond spans
    // to zero length.
    let service = lock_service_replay_observed(
        &market,
        JupiterStrategy::new().with_obs(obs.clone()),
        ServiceReplayConfig {
            eval_start: train,
            window_minutes: 2 * 60,
            interval_hours: 2,
            sla_ms: 5_000,
            seed,
        },
        &obs,
    );
    println!(
        "service replay: {} ops traced ({} crashes)",
        service.ops_completed, service.crashes
    );

    let store = ModelStore::with_obs(obs.clone());
    let result = replay_repair_stored(
        &market,
        &spec,
        JupiterStrategy::new().with_obs(obs.clone()),
        ReplayConfig::new(train, train + eval, 6),
        RepairConfig::hybrid(),
        &store,
        &obs,
    );

    let snapshot = obs.metrics.snapshot();
    let events = obs.trace.events();
    let subtitle = format!(
        "Jupiter lock-service replay — seed {seed}, 2 training weeks, 1 evaluation week, \
         8 zones, 6 h bidding interval, hybrid repair. Time axis in market hours."
    );
    let html = report::render_replay_report(&subtitle, &result, &snapshot, &events);
    let charts = report::chart_count(&html);
    match std::fs::write(path, &html) {
        Ok(()) => println!(
            "report written to {path}: {charts} charts, {} series, {} bytes",
            result.series.len(),
            html.len()
        ),
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
    let trace_path = format!("{path}.trace.json");
    match std::fs::write(&trace_path, chrome_trace_json(&events)) {
        Ok(()) => println!(
            "trace exported to {trace_path} ({} events; load in chrome://tracing or Perfetto)",
            events.len()
        ),
        Err(e) => {
            eprintln!("cannot write {trace_path}: {e}");
            std::process::exit(1);
        }
    }
    let audit_path = format!("{path}.audit.jsonl");
    match std::fs::write(&audit_path, audit_jsonl(&result.audit)) {
        Ok(()) => println!(
            "audit log exported to {audit_path} ({} records)",
            result.audit.len()
        ),
        Err(e) => {
            eprintln!("cannot write {audit_path}: {e}");
            std::process::exit(1);
        }
    }
    let alerts_path = format!("{path}.alerts.jsonl");
    match std::fs::write(&alerts_path, alerts_jsonl(&result.alerts)) {
        Ok(()) => println!(
            "alerts exported to {alerts_path} ({} fired)",
            result.alerts.len()
        ),
        Err(e) => {
            eprintln!("cannot write {alerts_path}: {e}");
            std::process::exit(1);
        }
    }
}

/// The instrumented pass behind `--metrics-out`: a Jupiter market replay
/// (bids, grants, terminations by cause, per-interval cost/availability)
/// plus a short service-level Paxos replay (per-kind message counts,
/// elections, quorum-wait spans), all into one shared [`obs::Obs`] driven
/// by simulated time. The registry and trace ring are dumped as JSON.
fn metrics_pass(seed: u64, path: &str) {
    use jupiter::{JupiterStrategy, ServiceSpec};
    use obs::Obs;
    use replay::service_level::{lock_service_replay_observed, ServiceReplayConfig};
    use replay::{replay_strategy_observed, ReplayConfig};
    use spot_market::{InstanceType, Market, MarketConfig};

    println!("\n== Instrumented pass: market replay + service-level Paxos replay ==");
    let (obs, _clock) = Obs::simulated();

    let train = 2 * 7 * 24 * 60;
    let eval = 3 * 24 * 60;
    let mut cfg = MarketConfig::paper(seed, train + eval);
    cfg.zones.truncate(8);
    cfg.types = vec![InstanceType::M1Small];
    let market = Market::generate(cfg);
    let spec = ServiceSpec::lock_service();

    // Service replay first: the shared ManualClock is monotone, and the
    // market replay stamps market-minute time (~1e12 µs), which would
    // clamp the service replay's sim-millisecond span timestamps to zero
    // length (all trace latencies would read 0).
    let service = lock_service_replay_observed(
        &market,
        JupiterStrategy::new().with_obs(obs.clone()),
        ServiceReplayConfig {
            eval_start: train,
            window_minutes: 4 * 60,
            interval_hours: 2,
            sla_ms: 5_000,
            seed,
        },
        &obs,
    );
    println!(
        "service replay:  {} ops, {} crashes, {} reconfigs",
        service.ops_completed, service.crashes, service.reconfigs
    );

    let replayed = replay_strategy_observed(
        &market,
        &spec,
        JupiterStrategy::new().with_obs(obs.clone()),
        ReplayConfig::new(train, train + eval, 6),
        &obs,
    );
    println!(
        "market replay:   cost ${:.2}, availability {:.6}, {} kills",
        replayed.total_cost.as_dollars(),
        replayed.availability(),
        replayed.total_kills()
    );

    let snap = obs.metrics.snapshot();
    println!(
        "paxos messages:  {} sent / {} received",
        snap.counter_family("paxos.msg_sent."),
        snap.counter_family("paxos.msg_recv.")
    );
    println!(
        "bids placed:     {}",
        snap.counter("replay.bids_placed").unwrap_or(0)
    );
    println!(
        "traced ops:      {} complete, {} orphan spans; commit latency p50 {} µs / p99 {} µs",
        snap.counter("trace.ops").unwrap_or(0),
        snap.counter("trace.orphan_spans").unwrap_or(0),
        snap.counter("trace.commit_latency_p50_micros").unwrap_or(0),
        snap.counter("trace.commit_latency_p99_micros").unwrap_or(0),
    );
    println!(
        "\n{:<44} {:>9} {:>12} {:>12} {:>12}",
        "histogram (µs)", "count", "p50", "p90", "p99"
    );
    for (name, h) in &snap.histograms {
        println!(
            "{:<44} {:>9} {:>12.1} {:>12.1} {:>12.1}",
            name, h.count, h.p50_est, h.p90_est, h.p99_est
        );
    }
    match std::fs::write(path, obs.to_json()) {
        Ok(()) => println!("metrics dumped to {path}"),
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn table1() {
    println!("\n== Table 1: Amazon EC2 regions and availability zones ==");
    println!("{:<16} {:<12} {:>5}", "Region", "Location", "AZs");
    for (region, location, azs) in experiments::table1() {
        println!("{region:<16} {location:<12} {azs:>5}");
    }
}

fn fig1(seed: u64) {
    println!("\n== Figure 1: spot price history (us-east-1a m1.small, 2 h) ==");
    println!("{:>6}  {:>8}", "minute", "price");
    let series = experiments::fig1_series(seed);
    let mut last = None;
    for (m, p) in series {
        if last != Some(p) {
            println!("{m:>6}  {p:>8}");
            last = Some(p);
        }
    }
}

fn fig4(scale: &Scale) {
    println!("\n== Figure 4: measured out-of-bid failure probability at target 0.01 ==");
    println!(
        "{:<18} {:<10} {:>10} {:>10} {:>10}",
        "zone", "type", "bid", "estimated", "measured"
    );
    for r in experiments::fig4(scale) {
        println!(
            "{:<18} {:<10} {:>10} {:>10.6} {:>10.6}",
            r.zone.name(),
            r.instance_type.api_name(),
            r.bid.map(|b| b.to_string()).unwrap_or_else(|| "-".into()),
            r.estimated,
            r.measured
        );
    }
}

fn fig5(scale: &Scale) {
    println!("\n== Figure 5: one-week cost under different bidding strategies ==");
    println!(
        "{:<18} {:<14} {:>10} {:>12}",
        "service", "strategy", "cost ($)", "availability"
    );
    for r in experiments::fig5(scale) {
        println!(
            "{:<18} {:<14} {:>10.2} {:>12.6}",
            r.service,
            r.strategy,
            r.cost.as_dollars(),
            r.availability
        );
    }
}

fn sweep_and_print(title: &str, rows: Vec<SweepRow>) -> Vec<SweepRow> {
    println!("\n== {title}: cost and availability vs bidding interval ==");
    println!(
        "{:<10} {:<14} {:>12} {:>12} {:>7}",
        "interval", "strategy", "cost ($)", "availability", "kills"
    );
    for r in &rows {
        let interval = if r.interval_hours == 0 {
            "-".to_string()
        } else {
            format!("{}h", r.interval_hours)
        };
        println!(
            "{:<10} {:<14} {:>12.2} {:>12.6} {:>7}",
            interval,
            r.strategy,
            r.cost.as_dollars(),
            r.availability,
            r.kills
        );
    }
    rows
}

fn headline(lock: &[SweepRow], storage: &[SweepRow]) {
    let h = experiments::headline(lock, storage);
    let sla = |met: bool| {
        if met {
            "SLA met"
        } else {
            "SLA MISSED — most-available fallback"
        }
    };
    println!("\n== Headline: Jupiter cost reduction vs on-demand baseline ==");
    println!(
        "lock service:    {:.2}% (best interval {} h, {}; paper: 81.23%)",
        h.lock_reduction_pct,
        h.lock_best_interval,
        sla(h.lock_met_sla)
    );
    println!(
        "storage service: {:.2}% (best interval {} h, {}; paper: 85.32%)",
        h.storage_reduction_pct,
        h.storage_best_interval,
        sla(h.storage_met_sla)
    );
}

fn repair(scale: &Scale) {
    // Three policies per (interval, strategy) cell triples the grid, so
    // the paper-scale sweep trims to the {3, 6, 12} h intervals — the
    // short-interval cells rarely see mid-interval kills anyway.
    let scale = if scale.intervals.len() > 3 {
        Scale {
            intervals: vec![3, 6, 12],
            ..scale.clone()
        }
    } else {
        scale.clone()
    };
    let s = experiments::repair_sweep(&scale);
    println!("\n== Repair-policy sweep: mid-interval rebids and on-demand fallback (lock service) ==");
    println!(
        "{:<10} {:<14} {:<10} {:>12} {:>12} {:>12} {:>10} {:>7}",
        "interval", "strategy", "repair", "cost ($)", "od cost ($)", "availability", "degraded", "kills"
    );
    for r in &s.rows {
        println!(
            "{:<10} {:<14} {:<10} {:>12.2} {:>12.2} {:>12.6} {:>8} m {:>7}",
            format!("{}h", r.interval_hours),
            r.strategy,
            r.policy.label(),
            r.cost.as_dollars(),
            r.on_demand_cost.as_dollars(),
            r.availability,
            r.degraded_minutes,
            r.kills
        );
    }
    println!(
        "on-demand baseline: ${:.2} (every repairing cell must undercut it)",
        s.baseline_cost.as_dollars()
    );
}

/// The `era` target: the interruption-regime race. The same storage
/// deployment replayed under the bidding era (out-of-bid kills) and the
/// capacity-reclaim era (hidden capacity processes with advance notices),
/// with reactive repair racing the proactive-migration controller in each.
/// Output is deterministic for a given seed, so CI diffs it across thread
/// counts.
fn era(scale: &Scale) {
    let s = experiments::era_sweep(scale);
    println!(
        "\n== Interruption eras: reactive repair vs proactive migration ({} h interval) ==",
        s.interval_hours
    );
    println!(
        "{:<18} {:<10} {:<12} {:>12} {:>12} {:>10} {:>7} {:>7} {:>7}",
        "era", "repair", "strategy", "cost ($)", "availability", "degraded", "kills", "drains", "late"
    );
    for r in &s.rows {
        println!(
            "{:<18} {:<10} {:<12} {:>12.2} {:>12.6} {:>8} m {:>7} {:>7} {:>7}",
            r.era.label(),
            r.policy.label(),
            r.strategy,
            r.cost.as_dollars(),
            r.availability,
            r.degraded_minutes,
            r.kills,
            r.drains,
            r.late_drains
        );
    }
    println!(
        "on-demand baseline: ${:.2} (every cell must undercut it)",
        s.baseline_cost.as_dollars()
    );
}

/// The `hetero` target: the heterogeneous-pool strategy race (Jupiter vs
/// the feedback controller vs Extra over single-type and mixed pools at a
/// shared strength floor) followed by the auto-scaler experiment (diurnal
/// demand, load-tracked fleet strength vs peak provisioning). Output is
/// deterministic for a given seed, so CI diffs it across thread counts.
fn hetero(scale: &Scale) {
    let s = experiments::hetero_sweep(scale);
    println!(
        "\n== Heterogeneous pools: strategy race at strength ≥ {} ({} h interval) ==",
        s.min_strength, s.interval_hours
    );
    println!(
        "{:<12} {:<22} {:>12} {:>12} {:>7} {:>7}",
        "strategy", "pools", "cost ($)", "availability", "kills", "nodes"
    );
    for r in &s.rows {
        println!(
            "{:<12} {:<22} {:>12.2} {:>12.6} {:>7} {:>7.1}",
            r.strategy, r.pool_label, r.cost.as_dollars(), r.availability, r.kills, r.mean_group_size
        );
    }
    println!(
        "on-demand baseline: ${:.2} (every cell must undercut it)",
        s.baseline_cost.as_dollars()
    );

    let r = experiments::autoscale_report(scale);
    println!("\n== Auto-scaler: diurnal demand vs peak provisioning (mixed pool, 3 h boundaries) ==");
    println!(
        "{:<26} {:>12} {:>12} {:>7}",
        "fleet", "cost ($)", "availability", "kills"
    );
    println!(
        "{:<26} {:>12.2} {:>12.6} {:>7}",
        "auto-scaled",
        r.result.total_cost.as_dollars(),
        r.result.availability(),
        r.result.total_kills()
    );
    println!(
        "{:<26} {:>12.2} {:>12.6} {:>7}",
        format!("static peak (strength {})", r.peak_strength),
        r.static_result.total_cost.as_dollars(),
        r.static_result.availability(),
        r.static_result.total_kills()
    );
    println!(
        "on-demand baseline: ${:.2}; scale-outs {}, scale-ins {}",
        r.baseline_cost.as_dollars(),
        r.scale_outs,
        r.scale_ins
    );
    let scale_decisions = r
        .result
        .audit
        .iter()
        .filter(|rec| rec.kind.label() == "scale_decision")
        .count();
    println!("audited scale decisions: {scale_decisions}");
    println!("\nper-type fleet series (points, peak, final):");
    for series in &r.result.series {
        if let Some(ty) = series.name.strip_prefix("pool.fleet.") {
            let peak = series.points.iter().map(|p| p.max).fold(0.0, f64::max);
            let last = series.points.last().map(|p| p.last).unwrap_or(0.0);
            println!(
                "  pool.fleet.{:<12} {:>6} {:>8.1} {:>8.1}",
                ty,
                series.points.len(),
                peak,
                last
            );
        }
    }
    if let Some(strength) = r.result.series_named("pool.strength") {
        let peak = strength.points.iter().map(|p| p.max).fold(0.0, f64::max);
        println!(
            "  {:<23} {:>6} {:>8.1}",
            "pool.strength",
            strength.points.len(),
            peak
        );
    }
}

fn ablations(scale: &Scale) {
    println!("\n== Ablation A: expectation (Eq. 5) vs absorbing failure estimates ==");
    let rows = experiments::ablation_estimator(scale);
    let n = rows.len().max(1) as f64;
    let exp_mean: f64 = rows.iter().map(|r| r.expectation_fp).sum::<f64>() / n;
    let abs_mean: f64 = rows.iter().map(|r| r.absorbing_fp).sum::<f64>() / n;
    let kill_rate: f64 = rows.iter().filter(|r| r.killed).count() as f64 / n;
    let frac_mean: f64 = rows.iter().map(|r| r.realized_fraction).sum::<f64>() / n;
    println!("samples:                  {}", rows.len());
    println!("mean expectation FP:      {exp_mean:.6}  (predicts time-fraction)");
    println!("mean absorbing FP:        {abs_mean:.6}  (predicts kill prob.)");
    println!("realized kill rate:       {kill_rate:.6}");
    println!("realized OOB fraction:    {frac_mean:.6}");

    println!("\n== Ablation B: greedy (Fig. 3) vs exact NLP optimum, 7-zone instances ==");
    let rows = experiments::ablation_greedy_vs_exact(scale);
    println!(
        "{:>10} {:>12} {:>12} {:>8}",
        "minute", "greedy ($)", "exact ($)", "ratio"
    );
    for r in &rows {
        let ratio = r.greedy_cost.as_dollars() / r.exact_cost.as_dollars().max(1e-9);
        println!(
            "{:>10} {:>12.4} {:>12.4} {:>8.3}",
            r.minute,
            r.greedy_cost.as_dollars(),
            r.exact_cost.as_dollars(),
            ratio
        );
    }

    println!("\n== Ablation C: expectation vs absorbing Jupiter, 6 h replay ==");
    println!(
        "{:<14} {:>12} {:>12} {:>7}",
        "strategy", "cost ($)", "availability", "kills"
    );
    for r in experiments::ablation_estimator_replay(scale) {
        println!(
            "{:<14} {:>12.2} {:>12.6} {:>7}",
            r.strategy,
            r.cost.as_dollars(),
            r.availability,
            r.kills
        );
    }

    println!("\n== Ablation D: adaptive bidding interval (§5.5 extension) ==");
    println!(
        "{:<22} {:>12} {:>12} {:>14}",
        "schedule", "cost ($)", "availability", "mean interval"
    );
    for r in experiments::ablation_adaptive(scale) {
        println!(
            "{:<22} {:>12.2} {:>12.6} {:>12.1} h",
            r.strategy,
            r.cost.as_dollars(),
            r.availability,
            r.mean_interval_hours
        );
    }

    println!("\n== Ablation E: weighted voting (Eq. 11) vs simple majority ==");
    println!(
        "{:<42} {:>12} {:>12}",
        "failure profile", "majority", "weighted"
    );
    for r in experiments::ablation_weighted_voting() {
        println!(
            "{:<42} {:>12.8} {:>12.8}",
            format!("{:?}", r.profile),
            r.majority,
            r.weighted
        );
    }

    println!("\n== Ablation G: one-shot fixed bids (Andrzejak-style) vs online re-bidding ==");
    println!(
        "{:<26} {:>12} {:>12} {:>7}",
        "strategy", "cost ($)", "availability", "kills"
    );
    for r in experiments::ablation_fixed_once(scale) {
        println!(
            "{:<26} {:>12.2} {:>12.6} {:>7}",
            r.strategy,
            r.cost.as_dollars(),
            r.availability,
            r.kills
        );
    }

    println!("\n== Ablation F: model mismatch (semi-Markov vs banded AR(1) market) ==");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>10}",
        "process", "predicted", "realized", "abs error", "kill rate"
    );
    for r in experiments::ablation_model_mismatch(scale) {
        println!(
            "{:<14} {:>12.6} {:>12.6} {:>12.6} {:>10.4}",
            r.process, r.mean_predicted, r.mean_realized, r.mean_abs_error, r.kill_rate
        );
    }
}

/// The `workload` target: request-level open-loop replays.
///
/// Three passes, all seeded and bit-deterministic:
///
/// 1. the headline lock-service run — ≥100k requests at full scale
///    (1000 req/s Poisson over 512 sessions, batch 8, unbounded
///    pipeline), the request-level counterpart of the paper's
///    fleet-level availability;
/// 2. a smaller RS-Paxos storage run with batched shard proposals;
/// 3. a batched-vs-unbatched comparison at a reference load chosen to
///    saturate a depth-4 accept pipeline without batching (capacity
///    ≈ pipeline/commit-RTT ≈ 40 req/s) but not with it (≈ 320 req/s):
///    batching must win on p99 or something regressed.
///
/// Everything printed derives from sim time and fixed seeds, so the CI
/// determinism gate can diff this output across thread counts.
fn workload_target(quick: bool, seed: u64) {
    use obs::Obs;
    use simnet::{NetworkConfig, SimTime};
    use workload::{run_lock_workload, run_storage_workload, ArrivalProcess, WorkloadSpec};

    let row = |name: &str, r: &workload::WorkloadReport| {
        println!(
            "{:<28} {:>9} {:>9} {:>7} {:>9} {:>9} {:>12.6} {:>7}",
            name,
            r.requests,
            r.completed,
            r.retransmits,
            r.latency_p50.as_millis(),
            r.latency_p99.as_millis(),
            r.availability_ppm as f64 / 1e6,
            r.slo_alerts_fired,
        );
    };
    let header = || {
        println!(
            "{:<28} {:>9} {:>9} {:>7} {:>9} {:>9} {:>12} {:>7}",
            "configuration", "requests", "done", "rexmit", "p50 (ms)", "p99 (ms)", "slo avail", "alerts"
        );
    };

    println!("\n== Workload: request-level open-loop replay (lock service) ==");
    header();
    let lock_spec = WorkloadSpec {
        arrivals: ArrivalProcess::Poisson {
            rate_per_sec: 1_000.0,
        },
        horizon: SimTime::from_secs(if quick { 20 } else { 110 }),
        sessions: 512,
        population: 1_000_000,
        seed,
        batch_max_ops: 8,
        ..WorkloadSpec::default()
    };
    let lock = run_lock_workload(&lock_spec, NetworkConfig::default(), &Obs::disabled());
    row("lock batch=8", &lock);

    println!("\n== Workload: request-level open-loop replay (storage service) ==");
    header();
    let store_spec = WorkloadSpec {
        arrivals: ArrivalProcess::Poisson { rate_per_sec: 200.0 },
        horizon: SimTime::from_secs(if quick { 10 } else { 50 }),
        sessions: 128,
        population: 100_000,
        seed,
        batch_max_ops: 8,
        ..WorkloadSpec::default()
    };
    let store = run_storage_workload(&store_spec, NetworkConfig::default(), &Obs::disabled());
    row("storage batch=8", &store);

    println!("\n== Workload: batching at a pipeline-saturating reference load ==");
    header();
    let reference = WorkloadSpec {
        arrivals: ArrivalProcess::Poisson { rate_per_sec: 120.0 },
        horizon: SimTime::from_secs(20),
        sessions: 64,
        population: 50_000,
        seed,
        pipeline: 4,
        batch_max_ops: 1,
        ..WorkloadSpec::default()
    };
    let unbatched = run_lock_workload(&reference, NetworkConfig::default(), &Obs::disabled());
    row("lock batch=1 pipeline=4", &unbatched);
    let batched_ref = WorkloadSpec {
        batch_max_ops: 8,
        ..reference
    };
    let batched = run_lock_workload(&batched_ref, NetworkConfig::default(), &Obs::disabled());
    row("lock batch=8 pipeline=4", &batched);
    let speedup =
        unbatched.latency_p99.as_millis() as f64 / (batched.latency_p99.as_millis() as f64).max(1.0);
    println!("batching p99 speedup at reference load: {speedup:.1}x");
}

fn calibration(scale: &Scale) {
    use spot_market::{InstanceType, TraceGenerator};
    use spot_model::{backtest, BidRule, FailureModelConfig};

    println!("\n== Model calibration: walk-forward backtests per zone ==");
    println!(
        "{:<18} {:<16} {:>8} {:>11} {:>11} {:>10} {:>10}",
        "zone", "bid rule", "samples", "predicted", "realized", "abs err", "kill rate"
    );
    let ty = InstanceType::M1Small;
    let gen = TraceGenerator::new(scale.seed);
    for zone in spot_market::topology::experiment_zones().into_iter().take(6) {
        let trace = gen.generate(zone, ty, scale.horizon_minutes());
        let cap = ty.on_demand_price(zone.region);
        for (label, rule) in [
            ("spot x 1.2", BidRule::SpotMultiple(1.2)),
            ("target 0.0103", BidRule::TargetFp { target: 0.0103, cap }),
        ] {
            let r = backtest(
                &trace,
                scale.train_minutes(),
                360,
                12 * 60,
                rule,
                false,
                FailureModelConfig::default(),
            );
            println!(
                "{:<18} {:<16} {:>8} {:>11.6} {:>11.6} {:>10.6} {:>10.4}",
                zone.name(),
                label,
                r.samples,
                r.mean_predicted,
                r.mean_realized,
                r.mean_abs_error,
                r.kill_rate
            );
        }
    }
}
